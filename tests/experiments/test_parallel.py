"""Parallel experiment runner: equivalence with the sequential path."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments.parallel import (
    RunSpec,
    execute_spec_parallel,
    run_matrix_parallel,
    run_specs,
)
from repro.experiments.runner import ExperimentSetup, run_matrix


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.08, seed=3)


class TestRunSpecs:
    def test_single_spec_runs_inline(self, setup):
        spec = RunSpec("S-NUCA", "DEDUP", setup.config, setup.scale, setup.seed)
        (result,) = run_specs([spec])
        assert result.scheme == "S-NUCA"
        assert result.completion_time > 0

    def test_order_preserved(self, setup):
        specs = [
            RunSpec("S-NUCA", "DEDUP", setup.config, setup.scale, setup.seed),
            RunSpec("RT-3", "DEDUP", setup.config, setup.scale, setup.seed),
        ]
        results = run_specs(specs, max_workers=1)
        assert [r.scheme for r in results] == ["S-NUCA", "RT-3"]

    def test_scheme_kwargs_applied(self, setup):
        spec = RunSpec(
            "ASR", "PATRICIA", setup.config, setup.scale, setup.seed,
            scheme_kwargs=(("replication_level", 0.75),),
        )
        (result,) = run_specs([spec])
        assert result.asr_level == 0.75


class TestMatrixEquivalence:
    def test_parallel_matches_sequential(self, setup):
        schemes = ("S-NUCA", "RT-3")
        benchmarks = ("DEDUP", "BARNES")
        sequential = run_matrix(setup, schemes, benchmarks)
        parallel = run_matrix_parallel(setup, schemes, benchmarks, max_workers=1)
        for benchmark in benchmarks:
            for scheme in schemes:
                seq = sequential[benchmark][scheme]
                par = parallel[benchmark][scheme]
                assert seq.completion_time == par.completion_time
                assert seq.total_energy == pytest.approx(par.total_energy)

    def test_asr_level_search_in_parallel(self, setup):
        matrix = run_matrix_parallel(
            setup, ("ASR",), ("PATRICIA",), max_workers=1
        )
        result = matrix["PATRICIA"]["ASR"]
        assert result.asr_level in (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_process_pool_path(self, setup):
        """Exercise the real multiprocess path on a tiny matrix."""
        matrix = run_matrix_parallel(
            setup, ("S-NUCA", "RT-3"), ("DEDUP",), max_workers=2
        )
        assert matrix["DEDUP"]["S-NUCA"].completion_time > 0
        assert matrix["DEDUP"]["RT-3"].completion_time > 0


class TestExecuteSpecParallel:
    def test_store_hits_skip_simulation(self, setup):
        from repro.experiments.spec import ExperimentSpec, RunPoint, execute_spec
        from repro.experiments.store import ResultStore

        store = ResultStore.memory()
        spec = ExperimentSpec("par", (RunPoint("S-NUCA", "DEDUP"),))
        sequential = execute_spec(spec, setup, store=store)
        parallel = execute_spec_parallel(spec, setup, store, max_workers=1)
        assert store.misses == 1 and store.hits == 1
        assert (
            parallel["DEDUP"]["S-NUCA"].completion_time
            == sequential["DEDUP"]["S-NUCA"].completion_time
        )

    def test_duplicate_addresses_simulated_once(self, setup):
        from repro.experiments.spec import ExperimentSpec, RunPoint
        from repro.experiments.store import ResultStore

        store = ResultStore.memory()
        spec = ExperimentSpec(
            "dupes",
            (
                RunPoint("RT-3", "DEDUP", label="first"),
                RunPoint("RT-3", "DEDUP", label="second"),
            ),
        )
        results = execute_spec_parallel(spec, setup, store, max_workers=1)
        # Same accounting as the sequential executor: one miss, one hit.
        assert store.misses == 1 and store.hits == 1
        assert results["DEDUP"]["first"] is results["DEDUP"]["second"]
