"""Figure/table modules: smoke runs at small scale plus shape checks."""

import pytest

from repro.common.params import MachineConfig
from repro.experiments import ablations, comparison, fig1_runlength, fig9_limitedk
from repro.experiments import fig10_cluster, rt_sweep, summary, tables
from repro.experiments.runner import ExperimentSetup


@pytest.fixture(scope="module")
def setup():
    return ExperimentSetup(MachineConfig.small(), scale=0.08, seed=2)


@pytest.fixture(scope="module")
def small_matrix(setup):
    return comparison.run_comparison(
        setup, benchmarks=["BARNES", "DEDUP"], schemes=("S-NUCA", "R-NUCA", "RT-3")
    )


class TestComparison:
    def test_fig6_normalized_to_snuca(self, small_matrix):
        table = comparison.fig6_energy(small_matrix)
        for row in table.values():
            assert row["S-NUCA"] == pytest.approx(1.0)

    def test_fig7_normalized_to_snuca(self, small_matrix):
        table = comparison.fig7_completion(small_matrix)
        for row in table.values():
            assert row["S-NUCA"] == pytest.approx(1.0)

    def test_fig8_fractions(self, small_matrix):
        table = comparison.fig8_miss_breakdown(small_matrix)
        for row in table.values():
            for fractions in row.values():
                assert sum(fractions.values()) == pytest.approx(1.0)

    def test_average_row(self, small_matrix):
        table = comparison.fig6_energy(small_matrix)
        avg = comparison.average_row(table)
        assert avg["S-NUCA"] == pytest.approx(1.0)

    def test_component_breakdown_sums_to_normalized_total(self, small_matrix):
        table = comparison.fig6_energy(small_matrix)
        components = comparison.fig6_component_breakdown(small_matrix, "BARNES")
        for scheme, breakdown in components.items():
            assert sum(breakdown.values()) == pytest.approx(
                table["BARNES"][scheme], rel=1e-6
            )

    def test_render_tables(self, small_matrix):
        text = comparison.render_normalized_table(
            comparison.fig6_energy(small_matrix), "Figure 6"
        )
        assert "AVERAGE" in text
        text = comparison.render_miss_table(
            comparison.fig8_miss_breakdown(small_matrix), "Figure 8"
        )
        assert "LLC-Replica-Hits" in text


class TestFig1:
    def test_profiles_and_rendering(self, setup):
        profiles = fig1_runlength.run_fig1(setup, benchmarks=["BARNES"])
        text = fig1_runlength.render_fig1(profiles)
        assert "BARNES" in text
        assert "[1-2]" in text


class TestFig9:
    def test_normalization_to_complete(self, setup):
        results = fig9_limitedk.run_fig9(
            setup, benchmarks=["DEDUP"], k_values=(1, 3, None)
        )
        energy, time = fig9_limitedk.normalized_tables(results, setup.config.num_cores)
        complete_label = f"k={setup.config.num_cores}"
        assert energy["DEDUP"][complete_label] == pytest.approx(1.0)
        assert time["DEDUP"][complete_label] == pytest.approx(1.0)

    def test_render(self, setup):
        results = fig9_limitedk.run_fig9(setup, benchmarks=["DEDUP"], k_values=(3, None))
        energy, time = fig9_limitedk.normalized_tables(results, setup.config.num_cores)
        text = fig9_limitedk.render_fig9(energy, time)
        assert "GEOMEAN" in text


class TestFig10:
    def test_cluster_sizes_for_machine(self):
        assert fig10_cluster.cluster_sizes(64) == (1, 4, 16, 64)
        assert fig10_cluster.cluster_sizes(16) == (1, 4, 16)

    def test_normalization_to_c1(self, setup):
        results = fig10_cluster.run_fig10(setup, benchmarks=["DEDUP"], sizes=(1, 4))
        energy, time = fig10_cluster.normalized_tables(results)
        assert energy["DEDUP"]["C-1"] == pytest.approx(1.0)

    def test_render(self, setup):
        results = fig10_cluster.run_fig10(setup, benchmarks=["DEDUP"], sizes=(1, 4))
        energy, time = fig10_cluster.normalized_tables(results)
        text = fig10_cluster.render_fig10(energy, time)
        assert "C-4" in text


class TestRtSweep:
    def test_sweep_and_best(self, setup):
        results = rt_sweep.run_rt_sweep(
            setup, benchmarks=["BARNES"], rt_values=(1, 3)
        )
        assert set(results["BARNES"]) == {1, 3}
        best = rt_sweep.best_rt_by_edp(results)
        assert best in (1, 3)
        text = rt_sweep.render_rt_sweep(results)
        assert "Best RT" in text


class TestAblations:
    def test_replacement_ablation(self, setup):
        results = ablations.run_replacement_ablation(setup, benchmarks=["DEDUP"])
        assert set(results["DEDUP"]) == {"modified_lru", "lru"}
        text = ablations.render_replacement_ablation(results)
        assert "modified-LRU" in text or "mod-LRU" in text

    def test_oracle_ablation_small_difference(self, setup):
        """Section 2.3.2: the oracle saves < a few percent."""
        results = ablations.run_oracle_ablation(setup, benchmarks=["DEDUP"])
        probe = results["DEDUP"]["probe"]
        oracle = results["DEDUP"]["oracle"]
        ratio = probe.completion_time / oracle.completion_time
        assert 0.95 <= ratio <= 1.10


class TestSummary:
    def test_headline_reductions(self, setup):
        results = comparison.run_comparison(
            setup, benchmarks=["BARNES", "DEDUP"],
            schemes=("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3"),
        )
        energy_red, time_red = summary.headline_reductions(results)
        assert set(energy_red) == {"VR", "ASR", "R-NUCA", "S-NUCA"}
        text = summary.render_summary(energy_red, time_red)
        assert "S-NUCA" in text

    def test_paper_reference_values(self):
        assert summary.PAPER_ENERGY_REDUCTION["S-NUCA"] == 0.21
        assert summary.PAPER_TIME_REDUCTION["VR"] == 0.04


class TestTables:
    def test_table1_renders_paper_values(self):
        text = tables.render_table1(MachineConfig.paper())
        assert "64 @ 1 GHz" in text
        assert "256 KB" in text
        assert "ACKwise_4" in text
        assert "RT = 3" in text

    def test_table2_lists_all_benchmarks(self):
        text = tables.render_table2()
        for name in ("RADIX", "BARNES", "CONCOMP", "PATRICIA"):
            assert name in text
        assert "64K particles" in text
