"""ResultSet query layer: pivot / normalized_to / aggregates vs hand tables."""

import pytest

from repro.experiments.results import ResultSet
from repro.experiments.runner import RunResult
from repro.experiments.spec import ExperimentSpec, RunPoint
from repro.sim.stats import SimStats


def fake_result(scheme, benchmark, energy, time):
    stats = SimStats(num_cores=4)
    stats.completion_time = time
    return RunResult(scheme, benchmark, stats, {"LLC": energy})


@pytest.fixture
def rset():
    grid = {
        ("A", "S-NUCA"): (8.0, 100.0),
        ("A", "RT-3"): (4.0, 50.0),
        ("B", "S-NUCA"): (2.0, 10.0),
        ("B", "RT-3"): (1.0, 20.0),
    }
    results = {
        RunPoint(scheme, benchmark): fake_result(scheme, benchmark, energy, time)
        for (benchmark, scheme), (energy, time) in grid.items()
    }
    spec = ExperimentSpec("unit", tuple(results), baseline="S-NUCA")
    return ResultSet.from_spec(spec, results)


class TestPivot:
    def test_pivot_energy(self, rset):
        assert rset.pivot("total_energy") == {
            "A": {"S-NUCA": 8.0, "RT-3": 4.0},
            "B": {"S-NUCA": 2.0, "RT-3": 1.0},
        }

    def test_pivot_callable_value(self, rset):
        table = rset.pivot(lambda r: r.completion_time * 2)
        assert table["A"]["S-NUCA"] == 200.0

    def test_pivot_alternate_axes(self, rset):
        table = rset.pivot("total_energy", row="scheme", col="benchmark")
        assert table == {
            "S-NUCA": {"A": 8.0, "B": 2.0},
            "RT-3": {"A": 4.0, "B": 1.0},
        }


class TestNormalization:
    def test_normalized_to_baseline(self, rset):
        table = rset.normalized_to("S-NUCA", "total_energy")
        assert table == {
            "A": {"S-NUCA": 1.0, "RT-3": 0.5},
            "B": {"S-NUCA": 1.0, "RT-3": 0.5},
        }

    def test_spec_baseline_is_the_default(self, rset):
        assert rset.normalized_to(value="completion_time")["B"]["RT-3"] == 2.0

    def test_missing_baseline_raises(self, rset):
        with pytest.raises(KeyError):
            rset.normalized_to("VR")

    def test_no_baseline_anywhere_raises(self, rset):
        rset.baseline = None
        with pytest.raises(ValueError):
            rset.normalized_to()


class TestAggregates:
    def test_mean(self, rset):
        assert rset.mean("total_energy") == {"S-NUCA": 5.0, "RT-3": 2.5}

    def test_geomean(self, rset):
        assert rset.geomean("total_energy") == {
            "S-NUCA": pytest.approx(4.0), "RT-3": pytest.approx(2.0),
        }

    def test_normalized_geomean(self, rset):
        # time ratios: A 0.5, B 2.0 -> geomean 1.0
        table = rset.geomean("completion_time", baseline="S-NUCA")
        assert table["RT-3"] == pytest.approx(1.0)
        assert table["S-NUCA"] == pytest.approx(1.0)


class TestLegacyMappingShape:
    def test_rows_and_labels_ordered(self, rset):
        assert rset.benchmarks() == ("A", "B")
        assert rset.labels() == ("S-NUCA", "RT-3")
        assert list(rset) == ["A", "B"]
        assert len(rset) == 2

    def test_subscription(self, rset):
        assert rset["A"]["RT-3"].total_energy == 4.0
        assert set(rset["B"]) == {"S-NUCA", "RT-3"}

    def test_ensure_wraps_legacy_dict(self):
        legacy = {
            "A": {"x": fake_result("x", "A", 3.0, 30.0)},
            "B": {"x": fake_result("x", "B", 6.0, 60.0)},
        }
        rset = ResultSet.ensure(legacy)
        assert rset.pivot("total_energy") == {"A": {"x": 3.0}, "B": {"x": 6.0}}
        assert ResultSet.ensure(rset) is rset

    def test_ensure_preserves_non_string_labels(self):
        legacy = {"A": {1: fake_result("RT-1", "A", 1.0, 1.0),
                        3: fake_result("RT-3", "A", 2.0, 2.0)}}
        rset = ResultSet.ensure(legacy)
        assert rset.labels() == (1, 3)
        assert rset["A"][3].total_energy == 2.0

    def test_distinct_points_sharing_a_cell_rejected(self):
        # Two different RT-3 configs with no labels would both land on
        # the ("A", "RT-3") cell and silently shadow each other.
        colliding = {
            RunPoint("RT-3", "A"): fake_result("RT-3", "A", 1.0, 1.0),
            RunPoint("RT-3", "A", config_overrides={"cluster_size": 4}):
                fake_result("RT-3", "A", 2.0, 2.0),
        }
        with pytest.raises(ValueError, match="distinct labels"):
            ResultSet(colliding)
