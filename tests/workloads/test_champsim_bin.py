"""Binary ChampSim capture format: decode semantics, compression,
truncation, budget, roundtrip, and the giga-fixture synthesizer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.types import AccessType
from repro.workloads.champsim_bin import (
    RECORD_BYTES,
    RECORD_DTYPE,
    ChampSimBinError,
    expand_block,
    iter_access_segments,
    iter_instruction_blocks,
    read_champsim_bin,
    synthesize_champsim_bin,
    write_champsim_bin,
)
from repro.workloads.imports import (
    ImportOptions,
    TraceImportError,
    detect_format,
    import_trace,
)

from tests.helpers import records_trace_set

R, W = AccessType.READ, AccessType.WRITE


def _records(instructions):
    """Build raw records from per-instruction (src_mems, dst_mems) lists."""
    block = np.zeros(len(instructions), dtype=RECORD_DTYPE)
    block["ip"] = 0x400000 + 4 * np.arange(len(instructions), dtype=np.uint64)
    for i, (srcs, dsts) in enumerate(instructions):
        for slot, addr in enumerate(srcs):
            block["src_mem"][i, slot] = addr
        for slot, addr in enumerate(dsts):
            block["dst_mem"][i, slot] = addr
    return block


def _write_raw(path, block):
    path.write_bytes(block.tobytes())
    return path


class TestRecordLayout:
    def test_packs_to_64_bytes(self):
        assert RECORD_BYTES == 64

    def test_expand_reads_before_writes_in_slot_order(self):
        block = _records([
            ([0x1000, 0x2000], [0x3000]),
            ([], [0x4000]),
            ([], []),  # no memory operands
            ([0x5000], []),
        ])
        types, lines, counts = expand_block(block, line_shift=6)
        assert list(counts) == [3, 1, 0, 1]
        assert [int(t) for t in types] == [
            int(R), int(R), int(W), int(W), int(R)
        ]
        assert list(lines) == [
            0x1000 >> 6, 0x2000 >> 6, 0x3000 >> 6, 0x4000 >> 6, 0x5000 >> 6
        ]


class TestIterInstructionBlocks:
    def test_blocks_cover_the_stream(self, tmp_path):
        block = _records([([0x40 * (i + 1)], []) for i in range(10)])
        path = _write_raw(tmp_path / "cap.trace", block)
        blocks = list(iter_instruction_blocks(path, block_instructions=3))
        assert [len(b) for b in blocks] == [3, 3, 3, 1]
        assert np.concatenate(blocks)["ip"].tolist() == block["ip"].tolist()

    def test_truncated_capture_raises(self, tmp_path):
        block = _records([([0x40], [])] * 2)
        path = tmp_path / "cap.trace"
        path.write_bytes(block.tobytes()[:-7])
        with pytest.raises(ChampSimBinError, match="truncated"):
            list(iter_instruction_blocks(path))

    def test_max_instructions_budget(self, tmp_path):
        block = _records([([0x40 * (i + 1)], []) for i in range(10)])
        path = _write_raw(tmp_path / "cap.trace", block)
        blocks = list(iter_instruction_blocks(
            path, block_instructions=4, max_instructions=6
        ))
        assert sum(len(b) for b in blocks) == 6

    def test_budget_suppresses_truncation_check(self, tmp_path):
        block = _records([([0x40], [])] * 3)
        path = tmp_path / "cap.trace"
        path.write_bytes(block.tobytes()[: 2 * RECORD_BYTES + 5])
        blocks = list(iter_instruction_blocks(path, max_instructions=2))
        assert sum(len(b) for b in blocks) == 2

    def test_corrupt_xz_raises_champsim_error(self, tmp_path):
        path = tmp_path / "cap.trace.xz"
        path.write_bytes(b"\xfd7zXZ\x00garbage-not-a-stream")
        with pytest.raises(ChampSimBinError, match="corrupt"):
            list(iter_instruction_blocks(path))


class TestCompression:
    @pytest.mark.parametrize("suffix", ["", ".xz", ".gz"])
    def test_transparent_roundtrip(self, tmp_path, suffix):
        traces = records_trace_set([
            [(R, 10 + i, 0) for i in range(8)],
            [(W, 30 + i, 0) for i in range(8)],
        ])
        path = tmp_path / f"cap.trace{suffix}"
        write_champsim_bin(traces, path)
        back = import_trace(path, options=ImportOptions(num_cores=2))
        for original, reread in zip(traces.cores, back.cores):
            assert list(reread.types) == list(original.types)
            assert list(reread.lines) == list(original.lines)


class TestSplit:
    def test_instruction_granularity_keeps_ops_together(self, tmp_path):
        # Instruction 0 (core 0) carries two reads and a write; they
        # must all land on core 0 even though the counts are uneven.
        block = _records([
            ([0x1000, 0x2000], [0x3000]),
            ([0x4000], []),
            ([0x5000], []),
            ([], [0x6000]),
        ])
        path = _write_raw(tmp_path / "cap.trace", block)
        [segment] = list(iter_access_segments(path, num_cores=2, line_shift=6))
        core0_types, core0_lines, core0_gaps = segment[0]
        core1_types, core1_lines, _ = segment[1]
        assert list(core0_lines) == [
            0x1000 >> 6, 0x2000 >> 6, 0x3000 >> 6, 0x5000 >> 6
        ]
        assert list(core1_lines) == [0x4000 >> 6, 0x6000 >> 6]
        assert core0_gaps.dtype == np.uint16 and not core0_gaps.any()

    def test_round_robin_is_global_across_blocks(self, tmp_path):
        block = _records([([0x40 * (i + 1)], []) for i in range(6)])
        path = _write_raw(tmp_path / "cap.trace", block)
        segments = list(iter_access_segments(
            path, num_cores=2, line_shift=6, block_instructions=3
        ))
        # Block 2 starts at instruction 3 -> core 1 first.
        assert list(segments[1][0][1]) == [5]
        assert list(segments[1][1][1]) == [4, 6]

    def test_empty_capture_rejected(self, tmp_path):
        path = _write_raw(tmp_path / "cap.trace", _records([([], [])]))
        with pytest.raises(TraceImportError, match="no memory accesses"):
            read_champsim_bin(path, ImportOptions(num_cores=1))


class TestDetection:
    @pytest.mark.parametrize("name", [
        "a.trace", "a.trace.xz", "a.trace.gz",
    ])
    def test_binary_content_detects(self, tmp_path, name):
        traces = records_trace_set([[(R, 5, 0)]])
        path = write_champsim_bin(traces, tmp_path / name)
        assert detect_format(path) == "champsim-bin"

    def test_champsimtrace_suffix_needs_no_content(self, tmp_path):
        assert detect_format(tmp_path / "a.champsimtrace.xz") == "champsim-bin"

    def test_text_dot_trace_still_sniffs_as_text(self, tmp_path):
        path = tmp_path / "a.trace"
        path.write_text("0,0,R,4\n")
        assert detect_format(path) == "csv"

    def test_import_records_provenance(self, tmp_path):
        traces = records_trace_set([[(R, 5, 0), (W, 6, 0)]])
        path = tmp_path / "cap.trace.xz"
        write_champsim_bin(traces, path)
        back = import_trace(path, options=ImportOptions(num_cores=1))
        assert back.provenance["format"] == "champsim-bin"
        assert back.provenance["records"] == 2


class TestSynthesize:
    def test_deterministic_and_importable(self, tmp_path):
        a = synthesize_champsim_bin(tmp_path / "a.trace.xz", 1000, seed=9)
        b = synthesize_champsim_bin(tmp_path / "b.trace.xz", 1000, seed=9)
        assert a.read_bytes() == b.read_bytes()
        back = import_trace(a, options=ImportOptions(num_cores=4))
        assert back.total_accesses() == 1000
        assert all(len(trace) == 250 for trace in back.cores)

    def test_write_fraction_and_footprint(self, tmp_path):
        path = synthesize_champsim_bin(
            tmp_path / "a.trace", 2000, seed=1,
            footprint_lines=64, write_fraction=0.5,
        )
        back = import_trace(path, options=ImportOptions(num_cores=1))
        trace = back.cores[0]
        writes = (np.asarray(trace.types) == int(W)).mean()
        assert 0.4 < writes < 0.6
        assert 1 <= min(trace.lines) and max(trace.lines) <= 64

    def test_hot_set_concentrates_accesses(self, tmp_path):
        path = synthesize_champsim_bin(
            tmp_path / "hot.trace", 4000, seed=2,
            footprint_lines=1 << 12, hot_lines=6, hot_fraction=0.9,
        )
        back = import_trace(path, options=ImportOptions(num_cores=1))
        lines = np.asarray(back.cores[0].lines)
        hot_share = (lines <= 6).mean()
        assert 0.85 < hot_share < 0.95  # 0.9 hot + a sliver of cold luck
        assert lines.max() > 6  # the cold tail still samples the footprint
