"""Streaming pipeline units: segment sources, the decode thread, the
façade, and the chunk-boundary handoff cases that must stay bit-exact."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.types import AccessType
from repro.sim.simulator import simulate
from repro.workloads.streaming import (
    ArraySegmentSource,
    CaptureSegmentSource,
    SegmentProducer,
    StreamingTraceSet,
    iter_segments,
    stream_chunk_records,
    stream_queue_depth,
    stream_threshold_bytes,
)

from tests.helpers import FixedLatencyEngine, records_trace_set

R, W, B = AccessType.READ, AccessType.WRITE, AccessType.BARRIER


def _chunk(types_lines):
    types = np.array([t for t, _l in types_lines], dtype=np.uint8)
    lines = np.array([l for _t, l in types_lines], dtype=np.int64)
    return types, lines, np.zeros(len(lines), dtype=np.uint16)


class TestKnobs:
    def test_chunk_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "128")
        assert stream_chunk_records(7) == 7
        assert stream_chunk_records() == 128

    def test_chunk_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_CHUNK", raising=False)
        assert stream_chunk_records() == 65536

    def test_chunk_rejects_non_positive(self):
        with pytest.raises(ValueError):
            stream_chunk_records(0)

    def test_queue_depth_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_QUEUE", "5")
        assert stream_queue_depth() == 5
        monkeypatch.setenv("REPRO_STREAM_QUEUE", "0")
        with pytest.raises(ValueError):
            stream_queue_depth()

    def test_threshold_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "-1")
        assert stream_threshold_bytes() == -1
        monkeypatch.delenv("REPRO_STREAM_THRESHOLD")
        assert stream_threshold_bytes() == 64 * 1024 * 1024


class TestIterSegments:
    def test_covers_every_record_exactly_once(self):
        traces = records_trace_set([
            [(R, i, 0) for i in range(10)],
            [(W, 100 + i, 0) for i in range(7)],
        ])
        segments = list(iter_segments(traces, chunk_records=4))
        assert [seg.index for seg in segments] == [0, 1, 2]
        assert segments[-1].last and not segments[0].last
        for core, trace in enumerate(traces.cores):
            lines = [
                line
                for seg in segments
                for line in seg.decoded[core].lines
            ]
            assert lines == list(trace.lines)

    def test_offsets_are_the_handoff_state(self):
        traces = records_trace_set([[(R, i, 0) for i in range(5)]])
        segments = list(iter_segments(traces, chunk_records=2))
        assert [(s.start, s.stop) for s in segments] == [
            ((0,), (2,)), ((2,), (4,)), ((4,), (5,)),
        ]

    def test_exhausted_core_gets_empty_windows(self):
        traces = records_trace_set([
            [(R, 1, 0)],
            [(R, 2, 0), (R, 3, 0), (R, 4, 0)],
        ])
        segments = list(iter_segments(traces, chunk_records=1))
        assert [seg.decoded[0].length for seg in segments] == [1, 0, 0]
        assert [seg.decoded[1].length for seg in segments] == [1, 1, 1]

    def test_trace_set_segments_method(self):
        traces = records_trace_set([[(R, 1, 0), (R, 2, 0)]])
        assert sum(seg.decoded[0].length for seg in traces.segments(1)) == 2


class TestArraySegmentSource:
    def test_bounded_pulls_in_order(self):
        traces = records_trace_set([[(R, i, 0) for i in range(5)]])
        source = ArraySegmentSource(traces, chunk_records=2)
        sizes = []
        lines = []
        while True:
            chunk = source.pull(0)
            if chunk is None:
                break
            sizes.append(len(chunk[0]))
            lines.extend(chunk[1])
        assert sizes == [2, 2, 1]
        assert lines == list(range(5))

    def test_pulls_are_views_not_copies(self):
        traces = records_trace_set([[(R, i, 0) for i in range(4)]])
        source = ArraySegmentSource(traces, chunk_records=2)
        chunk = source.pull(0)
        assert chunk[1].base is not None  # a slice view of the backing array

    def test_per_core_independent_progress(self):
        traces = records_trace_set([
            [(R, 1, 0), (R, 2, 0)],
            [(R, 3, 0)],
        ])
        source = ArraySegmentSource(traces, chunk_records=1)
        assert source.pull(1) is not None
        assert source.pull(1) is None
        assert source.pull(0) is not None
        assert source.pull(0) is not None
        assert source.pull(0) is None


class TestCaptureSegmentSource:
    def test_stages_and_drains_lock_step_segments(self):
        segments = [
            [_chunk([(R, 1), (R, 2)]), _chunk([(W, 10)])],
            [_chunk([(R, 3)]), _chunk([(W, 11), (W, 12)])],
        ]
        source = CaptureSegmentSource(iter(segments), num_cores=2)
        assert list(source.pull(0)[1]) == [1, 2]
        # Core 1's first chunk was staged while core 0 advanced.
        assert list(source.pull(1)[1]) == [10]
        assert list(source.pull(1)[1]) == [11, 12]
        assert source.pull(1) is None
        assert list(source.pull(0)[1]) == [3]
        assert source.pull(0) is None

    def test_skewed_consumption_concatenates_staged_chunks(self):
        segments = [
            [_chunk([(R, 1)]), _chunk([(W, 10)])],
            [_chunk([(R, 2)]), _chunk([(W, 11)])],
            [_chunk([(R, 3)]), _chunk([(W, 12)])],
        ]
        source = CaptureSegmentSource(iter(segments), num_cores=2)
        for _ in range(3):
            assert source.pull(0) is not None
        # Core 1's three staged blocks arrive as one window.
        assert list(source.pull(1)[1]) == [10, 11, 12]

    def test_empty_core_chunks_are_skipped_not_staged(self):
        segments = [[_chunk([(R, 1)]), _chunk([])]]
        source = CaptureSegmentSource(iter(segments), num_cores=2)
        assert source.pull(1) is None
        assert list(source.pull(0)[1]) == [1]

    def test_wrong_core_count_rejected(self):
        source = CaptureSegmentSource(iter([[_chunk([(R, 1)])]]), num_cores=2)
        with pytest.raises(ValueError, match="1 core chunks"):
            source.pull(0)

    def test_close_forwards_to_feed(self):
        closed = []

        class Feed:
            def __iter__(self):
                return iter([])

            def close(self):
                closed.append(True)

        feed = Feed()
        source = CaptureSegmentSource(feed, num_cores=1)
        source._segments = feed  # the iterator protocol loses .close
        source.close()
        assert closed == [True]


class TestSegmentProducer:
    def test_yields_in_order(self):
        producer = SegmentProducer(iter(range(20)), depth=2)
        assert list(producer) == list(range(20))
        producer.close()

    def test_propagates_producer_exceptions(self):
        def broken():
            yield 1
            raise RuntimeError("decode failed")

        producer = SegmentProducer(broken(), depth=2)
        with pytest.raises(RuntimeError, match="decode failed"):
            list(producer)
        producer.close()

    def test_close_unblocks_a_full_queue(self):
        producer = SegmentProducer(iter(range(1000)), depth=1)
        next(iter(producer))
        producer.close()  # must not hang on the blocked put
        assert not producer._thread.is_alive()


class TestStreamingTraceSet:
    def test_surface_mirrors_the_materialized_set(self):
        traces = records_trace_set([
            [(R, 1, 0), (B, 0, 0), (W, 2, 0)],
            [(R, 3, 0), (B, 0, 0), (W, 4, 0)],
        ])
        streamed = StreamingTraceSet.from_trace_set(traces, chunk_records=2)
        assert streamed.is_streaming
        assert streamed.num_cores == traces.num_cores
        assert streamed.total_accesses() == traces.total_accesses()
        assert streamed.total_barriers == 1
        assert streamed.footprint_lines() == traces.footprint_lines()
        assert streamed.classify(1) == traces.classify(1)
        with pytest.raises(KeyError):
            streamed.classify(1 << 20)
        streamed.validate_coverage()
        streamed.release_decoded()

    def test_gaps_integral_reflects_the_arrays(self):
        import dataclasses

        traces = records_trace_set([[(R, 1, 2)]])
        assert StreamingTraceSet.from_trace_set(traces).gaps_integral
        frac = dataclasses.replace(
            traces,
            cores=[dataclasses.replace(
                traces.cores[0], gaps=np.array([0.5])
            )],
        )
        assert not StreamingTraceSet.from_trace_set(frac).gaps_integral

    def test_reopenable_across_runs(self):
        traces = records_trace_set([[(R, i, 1) for i in range(6)]])
        streamed = StreamingTraceSet.from_trace_set(traces, chunk_records=2)
        first = simulate(FixedLatencyEngine(1), streamed).to_dict()
        second = simulate(FixedLatencyEngine(1), streamed).to_dict()
        assert first == second


def _verify_boundary(per_core, chunk_records, num_cores=None):
    """All four kernels, streamed at ``chunk_records``, must be
    bit-identical (stats *and* engine call log) to materialized."""
    traces = records_trace_set(per_core)
    num_cores = num_cores or traces.num_cores
    streamed = StreamingTraceSet.from_trace_set(traces, chunk_records)
    for kernel in ("reference", "fast", "batched", "vector"):
        materialized = FixedLatencyEngine(num_cores)
        expected = simulate(materialized, traces, kernel=kernel).to_dict()
        engine = FixedLatencyEngine(num_cores)
        got = simulate(engine, streamed, kernel=kernel).to_dict()
        assert got == expected, kernel
        assert engine.calls == materialized.calls, kernel


class TestChunkBoundaryHandoff:
    """The satellite cases: every chunk-edge shape stays bit-identical."""

    def test_run_spanning_chunk_edge(self):
        # 10 same-line hits per core: a single L1-hit run that a chunk
        # of 3 splits mid-run three times.
        per_core = [
            [(R, 1 + core, 1) for _ in range(10)] for core in range(2)
        ]
        _verify_boundary(per_core, chunk_records=3)

    def test_barrier_exactly_on_chunk_edge(self):
        per_core = [
            [(R, 1, 1), (R, 2, 1), (B, 0, 0), (R, 3, 1), (R, 4, 1)],
            [(W, 5, 2), (W, 6, 2), (B, 0, 0), (W, 7, 2), (W, 8, 2)],
        ]
        # chunk=3 puts the barrier at each first window's last record.
        _verify_boundary(per_core, chunk_records=3)

    def test_barrier_first_record_of_chunk(self):
        per_core = [
            [(R, 1, 1), (R, 2, 1), (B, 0, 0), (R, 3, 1)],
            [(W, 5, 9), (W, 6, 9), (B, 0, 0), (W, 7, 9)],
        ]
        _verify_boundary(per_core, chunk_records=2)

    def test_empty_core(self):
        per_core = [
            [(R, 1, 1), (R, 2, 1), (R, 3, 1)],
            [],
        ]
        _verify_boundary(per_core, chunk_records=2)

    def test_single_record_final_chunk(self):
        per_core = [[(R, i, 1) for i in range(7)]]
        _verify_boundary(per_core, chunk_records=3)

    def test_chunk_of_one(self):
        per_core = [
            [(R, 1, 1), (B, 0, 0), (W, 2, 3)],
            [(W, 9, 4), (B, 0, 0), (R, 8, 0)],
        ]
        _verify_boundary(per_core, chunk_records=1)

    def test_unbatchable_record_at_chunk_edge(self):
        # Line 42 refuses the batched closure, forcing a single-step
        # exactly where the window splits.
        traces = records_trace_set([
            [(R, 1, 1), (R, 42, 1), (R, 2, 1), (R, 42, 1)],
            [(R, 3, 1), (R, 4, 1), (R, 42, 1), (R, 5, 1)],
        ])
        streamed = StreamingTraceSet.from_trace_set(traces, chunk_records=2)
        for kernel in ("batched", "vector"):
            materialized = FixedLatencyEngine(
                2, batch_miss_lines=frozenset({42})
            )
            expected = simulate(materialized, traces, kernel=kernel).to_dict()
            engine = FixedLatencyEngine(2, batch_miss_lines=frozenset({42}))
            got = simulate(engine, streamed, kernel=kernel).to_dict()
            assert got == expected, kernel
            assert engine.calls == materialized.calls, kernel
