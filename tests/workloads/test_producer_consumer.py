"""Producer-consumer generator (exported for custom workload builders)."""

import numpy as np
import pytest

from repro.common.addr import Region
from repro.common.types import AccessType
from repro.workloads.generators import producer_consumer_component


@pytest.fixture
def rng():
    return np.random.default_rng(17)


class TestProducerConsumer:
    def test_producer_mostly_writes(self, rng):
        region = Region(0, 8)
        component = producer_consumer_component(region, 2000, rng, core=0, num_cores=4)
        _, types = component.take(2000)
        write_fraction = (types == AccessType.WRITE).mean()
        assert write_fraction > 0.5

    def test_consumers_only_read(self, rng):
        region = Region(0, 8)
        component = producer_consumer_component(region, 500, rng, core=2, num_cores=4)
        _, types = component.take(500)
        assert (types == AccessType.READ).all()

    def test_addresses_in_mailbox(self, rng):
        region = Region(100, 8)
        component = producer_consumer_component(region, 500, rng, core=1, num_cores=4)
        addresses, _ = component.take(500)
        assert addresses.min() >= 100
        assert addresses.max() < 108
