"""Synthetic access-pattern generators."""

import numpy as np
import pytest

from repro.common.addr import Region
from repro.common.types import AccessType
from repro.workloads.generators import (
    ComponentStream,
    compute_gaps,
    interleave_components,
    loop_component,
    migratory_component,
    stream_component,
    zipf_component,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


REGION = Region(base=1000, size=64)


class TestLoopComponent:
    def test_addresses_stay_in_region(self, rng):
        component = loop_component(REGION, 200, rng)
        addresses, _ = component.take(200)
        assert addresses.min() >= REGION.base
        assert addresses.max() < REGION.end

    def test_cyclic_sweep(self, rng):
        component = loop_component(REGION, 128, rng)
        addresses, _ = component.take(128)
        # Two full sweeps: each line touched exactly twice.
        unique, counts = np.unique(addresses, return_counts=True)
        assert len(unique) == 64
        assert (counts == 2).all()

    def test_phase_offsets_start(self, rng):
        component = loop_component(REGION, 10, rng, phase=5)
        addresses, _ = component.take(1)
        assert addresses[0] == REGION.base + 5

    def test_ifetch_types(self, rng):
        component = loop_component(REGION, 10, rng, ifetch=True)
        _, types = component.take(10)
        assert (types == AccessType.IFETCH).all()

    def test_ifetch_cannot_write(self, rng):
        with pytest.raises(ValueError):
            loop_component(REGION, 10, rng, write_frac=0.5, ifetch=True)

    def test_write_fraction_respected(self, rng):
        component = loop_component(REGION, 4000, rng, write_frac=0.25)
        _, types = component.take(4000)
        write_fraction = (types == AccessType.WRITE).mean()
        assert 0.2 < write_fraction < 0.3


class TestZipfComponent:
    def test_skew_concentrates_on_low_lines(self, rng):
        component = zipf_component(REGION, 8000, rng, skew=3.0)
        addresses, _ = component.take(8000)
        offsets = addresses - REGION.base
        # With skew 3, the bottom quarter draws most accesses.
        assert (offsets < 16).mean() > 0.5

    def test_addresses_in_region(self, rng):
        component = zipf_component(REGION, 1000, rng, skew=2.0)
        addresses, _ = component.take(1000)
        assert addresses.min() >= REGION.base
        assert addresses.max() < REGION.end

    def test_invalid_skew(self, rng):
        with pytest.raises(ValueError):
            zipf_component(REGION, 10, rng, skew=0.0)


class TestStreamComponent:
    def test_single_pass_touches_each_line_once(self, rng):
        component = stream_component(REGION, 64, rng)
        addresses, _ = component.take(64)
        assert len(np.unique(addresses)) == 64


class TestMigratoryComponent:
    def test_alternating_read_write(self, rng):
        region = Region(0, 4 * 8)
        component = migratory_component(region, 100, rng, core=0, num_cores=4,
                                        window_lines=8)
        _, types = component.take(100)
        assert (types[0::2] == AccessType.READ).all()
        assert (types[1::2] == AccessType.WRITE).all()

    def test_windows_disjoint_across_cores(self, rng):
        region = Region(0, 4 * 8)
        epoch_len = 8 * 5 * 2
        streams = [
            migratory_component(region, epoch_len, np.random.default_rng(1),
                                core=core, num_cores=4, window_lines=8)
            for core in range(4)
        ]
        footprints = []
        for stream in streams:
            addresses, _ = stream.take(epoch_len)
            footprints.append(set(addresses.tolist()))
        for index, first in enumerate(footprints):
            for second in footprints[index + 1:]:
                assert not first & second

    def test_ownership_rotates_between_epochs(self, rng):
        region = Region(0, 4 * 8)
        epoch_len = 8 * 5 * 2
        component = migratory_component(region, epoch_len * 2, rng, core=0,
                                        num_cores=4, window_lines=8)
        addresses, _ = component.take(epoch_len * 2)
        first_epoch = set(addresses[:epoch_len].tolist())
        second_epoch = set(addresses[epoch_len:].tolist())
        assert first_epoch != second_epoch

    def test_region_too_small_rejected(self, rng):
        with pytest.raises(ValueError, match="too small"):
            migratory_component(Region(0, 8), 100, rng, core=0, num_cores=4,
                                window_lines=8)


class TestInterleaving:
    def test_fractions_respected(self, rng):
        region_a, region_b = Region(0, 16), Region(1000, 16)
        components = [
            loop_component(region_a, 4000, rng),
            loop_component(region_b, 4000, rng),
        ]
        types, lines = interleave_components(components, [0.75, 0.25], 4000, rng)
        fraction_a = (lines < 1000).mean()
        assert 0.70 < fraction_a < 0.80

    def test_length(self, rng):
        components = [loop_component(REGION, 100, rng)]
        types, lines = interleave_components(components, [1.0], 100, rng)
        assert len(types) == len(lines) == 100

    def test_mismatched_fractions_rejected(self, rng):
        components = [loop_component(REGION, 10, rng)]
        with pytest.raises(ValueError):
            interleave_components(components, [0.5, 0.5], 10, rng)

    def test_component_wraps_when_exhausted(self, rng):
        component = ComponentStream(
            np.array([1, 2, 3]), np.zeros(3, dtype=np.uint8)
        )
        addresses, _ = component.take(7)
        assert addresses.tolist() == [1, 2, 3, 1, 2, 3, 1]


class TestComputeGaps:
    def test_mean_close_to_target(self, rng):
        gaps = compute_gaps(20000, rng, mean_gap=3.0)
        assert 2.5 < gaps.mean() < 3.5

    def test_zero_mean_gap(self, rng):
        gaps = compute_gaps(100, rng, mean_gap=0.0)
        assert (gaps == 0).all()

    def test_gaps_bounded(self, rng):
        gaps = compute_gaps(10000, rng, mean_gap=5.0)
        assert gaps.max() <= 64
