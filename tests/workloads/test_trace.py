"""Trace container semantics."""

import numpy as np
import pytest

from repro.common.addr import Region
from repro.common.types import AccessType, LineClass
from repro.workloads.trace import CoreTrace, TraceSet


def _core_trace(n=4, barrier_positions=()):
    types = np.full(n, AccessType.READ, dtype=np.uint8)
    for position in barrier_positions:
        types[position] = AccessType.BARRIER
    return CoreTrace(types, np.arange(n, dtype=np.int64), np.zeros(n, dtype=np.uint16))


class TestCoreTrace:
    def test_length(self):
        assert len(_core_trace(7)) == 7

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(ValueError):
            CoreTrace(
                np.zeros(3, dtype=np.uint8),
                np.zeros(2, dtype=np.int64),
                np.zeros(3, dtype=np.uint16),
            )

    def test_barrier_count(self):
        assert _core_trace(5, barrier_positions=(1, 3)).barrier_count() == 2


class TestTraceSet:
    def test_classify(self):
        regions = [
            (Region(0, 10), LineClass.PRIVATE),
            (Region(10, 10), LineClass.SHARED_RO),
            (Region(64, 10), LineClass.INSTRUCTION),
        ]
        traces = TraceSet("t", [_core_trace()], regions)
        assert traces.classify(5) == LineClass.PRIVATE
        assert traces.classify(10) == LineClass.SHARED_RO
        assert traces.classify(19) == LineClass.SHARED_RO
        assert traces.classify(64) == LineClass.INSTRUCTION

    def test_classify_gap_raises(self):
        traces = TraceSet("t", [_core_trace()], [(Region(0, 10), LineClass.PRIVATE)])
        with pytest.raises(KeyError):
            traces.classify(50)

    def test_total_accesses_excludes_barriers(self):
        traces = TraceSet(
            "t",
            [_core_trace(5, barrier_positions=(2,)), _core_trace(5, barrier_positions=(0,))],
            [(Region(0, 100), LineClass.PRIVATE)],
        )
        assert traces.total_accesses() == 8

    def test_footprint(self):
        traces = TraceSet(
            "t", [_core_trace()],
            [(Region(0, 10), LineClass.PRIVATE), (Region(64, 6), LineClass.SHARED_RO)],
        )
        assert traces.footprint_lines() == 16

    def test_unequal_barriers_rejected(self):
        with pytest.raises(ValueError, match="barrier"):
            TraceSet(
                "t",
                [_core_trace(5, barrier_positions=(1,)), _core_trace(5)],
                [(Region(0, 100), LineClass.PRIVATE)],
            )


class TestLazyDecodedViews:
    """The boxed hot-loop views must materialize on demand, not eagerly:
    a streamed window only ever touches the columns its kernel reads."""

    def test_construction_boxes_nothing(self):
        decoded = _core_trace(6, barrier_positions=(2,)).decoded()
        assert decoded._atypes is None
        assert decoded._lines is None
        assert decoded._gaps is None

    def test_summary_fields_eager_and_correct(self):
        trace = CoreTrace(
            np.array([AccessType.READ, AccessType.BARRIER, AccessType.WRITE],
                     dtype=np.uint8),
            np.array([4, 0, 5], dtype=np.int64),
            np.array([2, 7, 3], dtype=np.uint16),
        )
        decoded = trace.decoded()
        assert decoded.length == 3
        assert decoded.compute_cycles == 5.0  # barrier gap excluded
        assert decoded.gaps_integral

    def test_views_cache_on_first_use(self):
        decoded = _core_trace(4).decoded()
        atypes = decoded.atypes
        assert decoded._atypes is atypes
        assert decoded.atypes is atypes
        assert all(atype is AccessType.READ for atype in atypes)
        assert decoded.lines == [0, 1, 2, 3]
        assert decoded.gaps == [0.0] * 4
        assert isinstance(decoded.gaps[0], float)

    def test_release_drops_the_boxed_views(self):
        trace = _core_trace(4)
        decoded = trace.decoded()
        decoded.atypes, decoded.lines, decoded.gaps  # noqa: B018 - force boxing
        trace.release_decoded()
        fresh = trace.decoded()
        assert fresh._atypes is None
