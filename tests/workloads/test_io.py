"""Trace persistence round-trips."""

import json

import numpy as np
import pytest

from repro.common.params import MachineConfig
from repro.workloads.benchmarks import build_trace, get_profile
from repro.workloads.io import (
    FORMAT_VERSION,
    MIN_SUPPORTED_VERSION,
    load_trace_set,
    save_trace_set,
)


@pytest.fixture
def traces():
    return build_trace(get_profile("BARNES"), MachineConfig.tiny(), scale=0.05, seed=3)


def _rewrite_metadata(path, mutate):
    """Rewrite an archive's embedded JSON metadata in place."""
    with np.load(path) as archive:
        arrays = {key: archive[key] for key in archive.files}
    metadata = json.loads(bytes(arrays["metadata"]).decode("utf-8"))
    mutate(metadata)
    arrays["metadata"] = np.frombuffer(
        json.dumps(metadata).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


class TestRoundTrip:
    def test_arrays_identical(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        assert loaded.num_cores == traces.num_cores
        for original, restored in zip(traces.cores, loaded.cores):
            assert np.array_equal(original.types, restored.types)
            assert np.array_equal(original.lines, restored.lines)
            assert np.array_equal(original.gaps, restored.gaps)

    def test_regions_preserved(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        assert loaded.regions == traces.regions
        assert loaded.name == traces.name

    def test_classification_survives(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        sample_line = int(traces.cores[0].lines[0])
        assert loaded.classify(sample_line) == traces.classify(sample_line)

    def test_suffix_added_when_missing(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_traces_simulate_identically(self, traces, tmp_path):
        from repro.schemes.factory import make_scheme
        from repro.sim.simulator import simulate
        config = MachineConfig.tiny()
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        original_stats = simulate(make_scheme("RT-3", config), traces)
        loaded_stats = simulate(make_scheme("RT-3", config), loaded)
        assert original_stats.completion_time == loaded_stats.completion_time
        assert original_stats.counters == loaded_stats.counters


class TestVersioning:
    def test_newer_version_rejected_with_upgrade_hint(self, traces, tmp_path):
        """An archive from a *future* library release must fail loudly —
        an unknown layout could otherwise misparse silently — and the
        error must say the fix is upgrading, not that the file is bad."""
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        _rewrite_metadata(path, lambda m: m.update(version=FORMAT_VERSION + 1))
        with pytest.raises(ValueError, match=r"newer.*upgrade repro"):
            load_trace_set(path)

    def test_prehistoric_version_rejected(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        _rewrite_metadata(
            path, lambda m: m.update(version=MIN_SUPPORTED_VERSION - 1)
        )
        with pytest.raises(ValueError, match="predates"):
            load_trace_set(path)

    def test_non_integer_version_rejected(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        _rewrite_metadata(path, lambda m: m.update(version="2"))
        with pytest.raises(ValueError, match="no integer format version"):
            load_trace_set(path)

    def test_version_1_archive_still_loads(self, traces, tmp_path):
        """Pre-provenance archives (format version 1) stay readable."""
        path = save_trace_set(traces, tmp_path / "barnes.npz")

        def downgrade(metadata):
            metadata["version"] = 1
            del metadata["provenance"]

        _rewrite_metadata(path, downgrade)
        loaded = load_trace_set(path)
        assert loaded.provenance is None
        assert loaded.regions == traces.regions
        for original, restored in zip(traces.cores, loaded.cores):
            assert np.array_equal(original.types, restored.types)


class TestProvenance:
    def test_round_trips_through_the_archive(self, traces, tmp_path):
        traces.provenance = {"format": "csv", "source": "cap.csv",
                             "records": traces.total_accesses()}
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        assert loaded.provenance == traces.provenance

    def test_synthetic_traces_have_none(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        assert load_trace_set(path).provenance is None

    def test_provenance_is_a_compare_false_field(self):
        """provenance must never enter TraceSet comparisons — it is
        descriptive metadata, not trace content."""
        import dataclasses

        from repro.workloads.trace import TraceSet

        fields = {field.name: field for field in dataclasses.fields(TraceSet)}
        assert fields["provenance"].compare is False
        assert fields["provenance"].default is None
