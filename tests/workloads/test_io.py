"""Trace persistence round-trips."""

import numpy as np
import pytest

from repro.common.params import MachineConfig
from repro.workloads.benchmarks import build_trace, get_profile
from repro.workloads.io import FORMAT_VERSION, load_trace_set, save_trace_set


@pytest.fixture
def traces():
    return build_trace(get_profile("BARNES"), MachineConfig.tiny(), scale=0.05, seed=3)


class TestRoundTrip:
    def test_arrays_identical(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        assert loaded.num_cores == traces.num_cores
        for original, restored in zip(traces.cores, loaded.cores):
            assert np.array_equal(original.types, restored.types)
            assert np.array_equal(original.lines, restored.lines)
            assert np.array_equal(original.gaps, restored.gaps)

    def test_regions_preserved(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        assert loaded.regions == traces.regions
        assert loaded.name == traces.name

    def test_classification_survives(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        sample_line = int(traces.cores[0].lines[0])
        assert loaded.classify(sample_line) == traces.classify(sample_line)

    def test_suffix_added_when_missing(self, traces, tmp_path):
        path = save_trace_set(traces, tmp_path / "barnes")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_loaded_traces_simulate_identically(self, traces, tmp_path):
        from repro.schemes.factory import make_scheme
        from repro.sim.simulator import simulate
        config = MachineConfig.tiny()
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        loaded = load_trace_set(path)
        original_stats = simulate(make_scheme("RT-3", config), traces)
        loaded_stats = simulate(make_scheme("RT-3", config), loaded)
        assert original_stats.completion_time == loaded_stats.completion_time
        assert original_stats.counters == loaded_stats.counters


class TestVersioning:
    def test_version_mismatch_rejected(self, traces, tmp_path, monkeypatch):
        import repro.workloads.io as trace_io
        path = save_trace_set(traces, tmp_path / "barnes.npz")
        monkeypatch.setattr(trace_io, "FORMAT_VERSION", FORMAT_VERSION + 1)
        with pytest.raises(ValueError, match="version"):
            trace_io.load_trace_set(path)
