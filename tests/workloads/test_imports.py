"""Real-trace ingestion: importers, region inference, malformed inputs."""

from __future__ import annotations

import gzip
import lzma

import numpy as np
import pytest

from repro.common.params import MachineConfig
from repro.common.types import AccessType, LineClass
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import build_trace, get_profile
from repro.workloads.imports import (
    ImportOptions,
    TraceImportError,
    detect_format,
    export_champsim,
    export_csv,
    export_din,
    import_trace,
    infer_regions,
    is_imported_benchmark,
    imported_trace_path,
    trace_content_hash,
)
from repro.workloads.trace import CoreTrace, TraceSet


def _write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return path


def _core(types, lines, gaps=None):
    if gaps is None:
        gaps = [0] * len(types)
    return CoreTrace(
        types=np.array([int(t) for t in types], dtype=np.uint8),
        lines=np.array(lines, dtype=np.int64),
        gaps=np.array(gaps, dtype=np.uint16),
    )


R, W, I, B = (AccessType.READ, AccessType.WRITE,
              AccessType.IFETCH, AccessType.BARRIER)


class TestChampsimImport:
    def test_basic_records(self, tmp_path):
        path = _write(tmp_path, "t.champsim",
                      "0x400000 0x1000 0\n0x400004 0x1040 1\n")
        traces = import_trace(path)
        assert traces.num_cores == 1
        core = traces.cores[0]
        assert core.types.tolist() == [int(R), int(W)]
        assert core.lines.tolist() == [0x1000 >> 6, 0x1040 >> 6]
        assert core.gaps.tolist() == [0, 0]

    def test_round_robin_split(self, tmp_path):
        lines = "".join(f"0x400000 {addr:#x} 0\n"
                        for addr in range(0, 64 * 6, 64))
        path = _write(tmp_path, "t.champsim", lines)
        traces = import_trace(
            path, options=ImportOptions(num_cores=2, split="round-robin")
        )
        assert traces.cores[0].lines.tolist() == [0, 2, 4]
        assert traces.cores[1].lines.tolist() == [1, 3, 5]

    def test_blocks_split(self, tmp_path):
        lines = "".join(f"0x400000 {addr:#x} 0\n"
                        for addr in range(0, 64 * 6, 64))
        path = _write(tmp_path, "t.champsim", lines)
        traces = import_trace(
            path, options=ImportOptions(num_cores=2, split="blocks")
        )
        assert traces.cores[0].lines.tolist() == [0, 1, 2]
        assert traces.cores[1].lines.tolist() == [3, 4, 5]

    def test_blocks_split_uneven_covers_every_record(self, tmp_path):
        lines = "".join(f"0x400000 {addr:#x} 0\n"
                        for addr in range(0, 64 * 7, 64))
        path = _write(tmp_path, "t.champsim", lines)
        traces = import_trace(
            path, options=ImportOptions(num_cores=3, split="blocks")
        )
        flattened = [
            line for core in traces.cores for line in core.lines.tolist()
        ]
        assert flattened == [0, 1, 2, 3, 4, 5, 6]
        assert all(len(core) >= 2 for core in traces.cores)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = _write(tmp_path, "t.champsim",
                      "# a capture\n\n0x400000 0x1000 0\n")
        assert len(import_trace(path).cores[0]) == 1

    def test_decimal_addresses_accepted(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "4194304 128 1\n")
        assert import_trace(path).cores[0].lines.tolist() == [2]

    def test_line_bytes_shift(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "0x400000 0x100 0\n")
        traces = import_trace(path, options=ImportOptions(line_bytes=128))
        assert traces.cores[0].lines.tolist() == [2]


class TestDinImport:
    def test_type_codes(self, tmp_path):
        path = _write(tmp_path, "t.din", "0 0x1000\n1 0x1040\n2 0x2000\n")
        core = import_trace(path).cores[0]
        assert core.types.tolist() == [int(R), int(W), int(I)]

    def test_trailing_fields_ignored(self, tmp_path):
        path = _write(tmp_path, "t.din", "0 0x1000 extra stuff\n")
        assert len(import_trace(path).cores[0]) == 1

    def test_ifetch_lines_become_instruction_regions(self, tmp_path):
        path = _write(tmp_path, "t.din", "2 0x2000\n0 0x1000\n")
        traces = import_trace(path)
        assert traces.classify(0x2000 >> 6) == LineClass.INSTRUCTION
        assert traces.classify(0x1000 >> 6) == LineClass.PRIVATE

    def test_bare_hex_addresses_as_real_dinero_writes_them(self, tmp_path):
        """Classic din captures carry unprefixed (often zero-padded)
        hex addresses; `ffff03b0` must parse as hex, not be rejected."""
        path = _write(tmp_path, "t.din", "0 ffff03b0\n1 00401000\n")
        core = import_trace(path).cores[0]
        assert core.lines.tolist() == [0xFFFF03B0 >> 6, 0x00401000 >> 6]
        assert core.types.tolist() == [int(R), int(W)]


class TestCsvImport:
    def test_explicit_cores_and_gaps(self, tmp_path):
        path = _write(tmp_path, "t.csv",
                      "core,tick,type,line\n"
                      "0,5,R,16\n"
                      "1,2,W,32\n"
                      "0,9,R,17\n")
        traces = import_trace(path)
        assert traces.num_cores == 2
        assert traces.cores[0].gaps.tolist() == [5, 4]
        assert traces.cores[1].gaps.tolist() == [2]
        assert traces.cores[0].lines.tolist() == [16, 17]

    def test_header_optional_and_case_insensitive(self, tmp_path):
        with_header = import_trace(
            _write(tmp_path, "a.csv", "CORE,TICK,TYPE,LINE\n0,0,r,4\n")
        )
        without = import_trace(_write(tmp_path, "b.csv", "0,0,R,4\n"))
        assert with_header.cores[0].lines.tolist() == without.cores[0].lines.tolist()

    def test_comment_before_header(self, tmp_path):
        path = _write(tmp_path, "t.csv",
                      "# exported by tool X\ncore,tick,type,line\n0,0,R,4\n")
        assert len(import_trace(path).cores[0]) == 1

    def test_barriers_carried(self, tmp_path):
        path = _write(tmp_path, "t.csv",
                      "0,1,R,4\n0,2,B,0\n1,1,W,4\n1,3,B,0\n")
        traces = import_trace(path)
        assert traces.cores[0].barrier_count() == 1
        assert traces.cores[1].barrier_count() == 1

    def test_sparse_core_ids_leave_empty_cores(self, tmp_path):
        """Inferred width is max id + 1; unmentioned cores stay empty
        (they finish at time zero in the simulator)."""
        path = _write(tmp_path, "t.csv", "2,0,R,4\n0,0,R,5\n")
        traces = import_trace(path)
        assert traces.num_cores == 3
        assert len(traces.cores[1]) == 0
        assert traces.cores[2].lines.tolist() == [4]

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "t.csv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("core,tick,type,line\n0,0,R,4\n")
        assert import_trace(path).cores[0].lines.tolist() == [4]

    def test_xz_transparent(self, tmp_path):
        path = tmp_path / "t.csv.xz"
        with lzma.open(path, "wt") as handle:
            handle.write("core,tick,type,line\n0,0,R,4\n1,0,W,9\n")
        traces = import_trace(path)
        assert traces.cores[0].lines.tolist() == [4]
        assert traces.cores[1].lines.tolist() == [9]


class TestMaxRecords:
    def test_caps_single_stream_imports(self, tmp_path):
        lines = "".join(f"0x400000 {hex(0x40 * (i + 1))} 0\n" for i in range(10))
        path = _write(tmp_path, "t.champsim", lines)
        traces = import_trace(
            path, options=ImportOptions(max_records=4, num_cores=2)
        )
        assert traces.total_accesses() == 4
        assert traces.provenance["max_records"] == 4

    def test_caps_csv_imports(self, tmp_path):
        rows = "".join(f"0,{i},R,{4 + i}\n" for i in range(10))
        path = _write(tmp_path, "t.csv", rows)
        traces = import_trace(path, options=ImportOptions(max_records=3))
        assert traces.total_accesses() == 3

    def test_unlimited_leaves_provenance_clean(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,0,R,4\n")
        traces = import_trace(path)
        assert "max_records" not in traces.provenance

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="max_records"):
            ImportOptions(max_records=0)


class TestFormatDetection:
    def test_by_extension(self, tmp_path):
        assert detect_format(_write(tmp_path, "a.csv", "0,0,R,4\n")) == "csv"
        assert detect_format(_write(tmp_path, "a.din", "0 0x10\n")) == "din"
        assert detect_format(
            _write(tmp_path, "a.champsim", "0x4 0x10 0\n")
        ) == "champsim"

    def test_gz_extension_sees_inner_format(self, tmp_path):
        path = tmp_path / "a.csv.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0,0,R,4\n")
        assert detect_format(path) == "csv"

    def test_by_content(self, tmp_path):
        assert detect_format(_write(tmp_path, "x.trace", "0,0,R,4\n")) == "csv"
        assert detect_format(_write(tmp_path, "y.trace", "2 0x40\n")) == "din"
        assert detect_format(
            _write(tmp_path, "z.trace", "0x400000 0x40 1\n")
        ) == "champsim"

    def test_din_with_trailing_columns_detects_as_din(self, tmp_path):
        """din rows may carry ignored trailing fields; the type-code
        first field must win over the three-field champsim rule, or a
        write record like '1 0x2000 0' silently imports as a read."""
        path = _write(tmp_path, "y.trace", "1 0x2000 0\n0 0x1000 0\n")
        assert detect_format(path) == "din"
        core = import_trace(path, fmt="auto").cores[0]
        assert core.types.tolist() == [int(W), int(R)]

    def test_undetectable_raises(self, tmp_path):
        path = _write(tmp_path, "w.trace", "one two three four five\n")
        with pytest.raises(TraceImportError, match="auto-detect"):
            detect_format(path)

    def test_import_auto_uses_detection(self, tmp_path):
        path = _write(tmp_path, "x.trace", "0,0,R,4\n")
        traces = import_trace(path, fmt="auto")
        assert traces.provenance["format"] == "csv"


class TestRegionInference:
    def test_private_shared_ro_rw_and_instruction(self):
        cores = [
            _core([R, W, R, I], [10, 11, 20, 40]),
            _core([R, R, R, I], [20, 21, 30, 40]),
        ]
        regions = dict(
            (line, cls) for region, cls in infer_regions(cores)
            for line in range(region.base, region.end)
        )
        assert regions[10] == LineClass.PRIVATE      # only core 0
        assert regions[11] == LineClass.PRIVATE      # written, single core
        assert regions[30] == LineClass.PRIVATE      # only core 1
        assert regions[20] == LineClass.SHARED_RO    # both cores, reads only
        assert regions[21] == LineClass.PRIVATE      # only core 1
        assert regions[40] == LineClass.INSTRUCTION  # fetched by both

    def test_shared_written_line_is_shared_rw(self):
        cores = [_core([W], [7]), _core([R], [7])]
        [(region, cls)] = infer_regions(cores)
        assert (region.base, region.size) == (7, 1)
        assert cls == LineClass.SHARED_RW

    def test_instruction_priority_over_data(self):
        cores = [_core([R, I], [5, 5]), _core([W], [5])]
        [(region, cls)] = infer_regions(cores)
        assert cls == LineClass.INSTRUCTION

    def test_consecutive_same_class_lines_coalesce(self):
        cores = [_core([R, R, R, R], [100, 101, 102, 200])]
        regions = infer_regions(cores)
        assert [(r.base, r.size) for r, _ in regions] == [(100, 3), (200, 1)]

    def test_barriers_do_not_enter_the_map(self):
        cores = [_core([R, B], [4, 0]), _core([R, B], [4, 0])]
        regions = infer_regions(cores)
        assert [(r.base, r.size) for r, _ in regions] == [(4, 1)]

    def test_coverage_validates_on_import(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,0,R,4\n0,1,W,900\n1,0,R,4\n")
        traces = import_trace(path)
        traces.validate_coverage()  # must not raise


class TestProvenanceAndHash:
    def test_provenance_recorded(self, tmp_path):
        path = _write(tmp_path, "cap.csv", "0,0,R,4\n")
        traces = import_trace(path)
        prov = traces.provenance
        assert prov["format"] == "csv"
        assert prov["source"] == "cap.csv"
        assert prov["source_sha256"] == trace_content_hash(path)
        assert prov["records"] == 1

    def test_name_defaults_to_stem_and_is_overridable(self, tmp_path):
        path = _write(tmp_path, "cap.csv", "0,0,R,4\n")
        assert import_trace(path).name == "cap"
        named = import_trace(path, options=ImportOptions(name="mine"))
        assert named.name == "mine"

    def test_content_hash_tracks_content_not_path(self, tmp_path):
        a = _write(tmp_path, "a.npz", "same bytes")
        b = _write(tmp_path, "b.npz", "same bytes")
        c = _write(tmp_path, "c.npz", "different bytes")
        assert trace_content_hash(a) == trace_content_hash(b)
        assert trace_content_hash(a) != trace_content_hash(c)

    def test_imported_benchmark_names(self):
        assert is_imported_benchmark("imported:traces/x.npz")
        assert not is_imported_benchmark("BARNES")
        assert str(imported_trace_path("imported:traces/x.npz")) == "traces/x.npz"
        with pytest.raises(ValueError, match="empty path"):
            imported_trace_path("imported:")


class TestExporters:
    @pytest.fixture
    def synthetic(self, tiny_config):
        return build_trace(
            get_profile("DEDUP"), tiny_config, scale=0.05, seed=5
        )

    def test_csv_round_trip_exact(self, synthetic, tmp_path):
        path = export_csv(synthetic, tmp_path / "rt.csv")
        back = import_trace(path)
        for original, restored in zip(synthetic.cores, back.cores):
            assert np.array_equal(original.types, restored.types)
            assert np.array_equal(original.lines, restored.lines)
            assert np.array_equal(original.gaps, restored.gaps)

    def test_csv_gzip_round_trip(self, synthetic, tmp_path):
        path = export_csv(synthetic, tmp_path / "rt.csv.gz")
        back = import_trace(path)
        assert back.total_accesses() == synthetic.total_accesses()

    def test_champsim_rejects_barriers_and_ifetch(self, synthetic, tmp_path):
        with pytest.raises(ValueError, match="barrier"):
            export_champsim(synthetic, tmp_path / "x.champsim")
        cores = [_core([I], [4])]
        flat = TraceSet("i", cores, infer_regions(cores))
        with pytest.raises(ValueError, match="instruction"):
            export_champsim(flat, tmp_path / "y.champsim")

    def test_din_round_robin_reconstruction(self, tmp_path):
        cores = [_core([R, W, I], [1, 2, 3]), _core([W, R, I], [4, 5, 6])]
        traces = TraceSet("d", cores, infer_regions(cores))
        path = export_din(traces, tmp_path / "d.din")
        back = import_trace(path, options=ImportOptions(num_cores=2))
        for original, restored in zip(traces.cores, back.cores):
            assert np.array_equal(original.types, restored.types)
            assert np.array_equal(original.lines, restored.lines)

    def test_unequal_core_lengths_rejected(self, tmp_path):
        cores = [_core([R], [1]), _core([R, R], [2, 3])]
        traces = TraceSet("u", cores, infer_regions(cores))
        with pytest.raises(ValueError, match="unequal"):
            export_din(traces, tmp_path / "u.din")

    def test_csv_rejects_fractional_gaps_instead_of_truncating(self, tmp_path):
        cores = [CoreTrace(
            types=np.array([int(R), int(R)], dtype=np.uint8),
            lines=np.array([1, 2], dtype=np.int64),
            gaps=np.array([2.5, 0.5], dtype=np.float64),
        )]
        traces = TraceSet("f", cores, infer_regions(cores))
        with pytest.raises(ValueError, match="fractional compute gaps"):
            export_csv(traces, tmp_path / "f.csv")


class TestImportedTraceSimulates:
    def test_all_kernels_bit_identical(self, tmp_path, tiny_config):
        from repro.testing.differential import verify_all_kernels

        synthetic = build_trace(
            get_profile("BARNES"), tiny_config, scale=0.05, seed=3
        )
        path = export_csv(synthetic, tmp_path / "b.csv")
        imported = import_trace(path)
        stats = verify_all_kernels(
            lambda: make_scheme("RT-3", tiny_config), imported,
            context="imported-csv",
        )
        auto = simulate(
            make_scheme("RT-3", tiny_config), import_trace(path), kernel="auto"
        )
        assert auto.counters == stats.counters
        assert auto.completion_time == stats.completion_time


# ---------------------------------------------------------------------------
# Malformed-input suite: every importer raises a precise, located error
# ---------------------------------------------------------------------------

class TestMalformedChampsim:
    def test_truncated_line(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "0x400000 0x1000 0\n0x400004\n")
        with pytest.raises(TraceImportError, match=r"t\.champsim:2.*3 fields"):
            import_trace(path, fmt="champsim")

    def test_bad_is_write(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "0x400000 0x1000 2\n")
        with pytest.raises(TraceImportError, match="is_write must be 0 or 1"):
            import_trace(path, fmt="champsim")

    def test_non_integer_address(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "0x400000 xyz 0\n")
        with pytest.raises(TraceImportError, match="'xyz' is not an integer"):
            import_trace(path, fmt="champsim")

    def test_negative_address(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "0x400000 -64 0\n")
        with pytest.raises(TraceImportError, match="negative address"):
            import_trace(path, fmt="champsim")

    def test_empty_capture(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "# only comments\n")
        with pytest.raises(TraceImportError, match="no records"):
            import_trace(path, fmt="champsim")

    def test_empty_capture_blocks_split(self, tmp_path):
        path = _write(tmp_path, "t.champsim", "\n")
        with pytest.raises(TraceImportError, match="no records"):
            import_trace(
                path, fmt="champsim",
                options=ImportOptions(num_cores=2, split="blocks"),
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceImportError, match="no such capture"):
            import_trace(tmp_path / "absent.champsim", fmt="champsim")


class TestMalformedDin:
    def test_unknown_type_code(self, tmp_path):
        path = _write(tmp_path, "t.din", "7 0x1000\n")
        with pytest.raises(TraceImportError, match="unknown din access type 7"):
            import_trace(path, fmt="din")

    def test_truncated_line(self, tmp_path):
        path = _write(tmp_path, "t.din", "0\n")
        with pytest.raises(TraceImportError, match=r"t\.din:1.*at least 2"):
            import_trace(path, fmt="din")


class TestMalformedCsv:
    def test_truncated_row(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,0,R,4\n0,1,W\n")
        with pytest.raises(TraceImportError, match=r"t\.csv:2.*4 fields"):
            import_trace(path, fmt="csv")

    def test_non_monotonic_ticks(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,5,R,4\n0,3,R,5\n")
        with pytest.raises(TraceImportError, match="non-monotonic tick 3"):
            import_trace(path, fmt="csv")

    def test_monotonicity_is_per_core(self, tmp_path):
        # Core 1's tick 2 after core 0's tick 9 is fine: clocks are per core.
        path = _write(tmp_path, "t.csv", "0,9,R,4\n1,2,R,5\n")
        import_trace(path, fmt="csv")

    def test_unknown_type_letter(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,0,Q,4\n")
        with pytest.raises(TraceImportError, match="unknown access type 'Q'"):
            import_trace(path, fmt="csv")

    def test_core_id_beyond_declared_cores(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,0,R,4\n5,0,R,4\n")
        with pytest.raises(TraceImportError, match="core id 5 outside the declared 2"):
            import_trace(path, fmt="csv", options=ImportOptions(num_cores=2))

    def test_negative_core_id(self, tmp_path):
        path = _write(tmp_path, "t.csv", "-1,0,R,4\n")
        with pytest.raises(TraceImportError, match="negative core id"):
            import_trace(path, fmt="csv")

    def test_negative_tick(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,-2,R,4\n")
        with pytest.raises(TraceImportError, match="negative tick"):
            import_trace(path, fmt="csv")

    def test_empty_capture(self, tmp_path):
        path = _write(tmp_path, "t.csv", "core,tick,type,line\n")
        with pytest.raises(TraceImportError, match="no records"):
            import_trace(path, fmt="csv")

    def test_huge_core_id_rejected_instead_of_allocating(self, tmp_path):
        """Without a declared width, a garbage core id must fail fast —
        not grow four billion per-core buffers."""
        path = _write(tmp_path, "t.csv", "0,0,R,4\n4000000000,0,R,4\n")
        with pytest.raises(TraceImportError, match="exceeds the inference cap"):
            import_trace(path, fmt="csv")

    def test_empty_core_with_barriers_elsewhere(self, tmp_path):
        # Core 1 exists (declared) but has no records while core 0
        # carries a barrier: the TraceSet barrier invariant fails with a
        # located import error.
        path = _write(tmp_path, "t.csv", "0,0,R,4\n0,1,B,0\n")
        with pytest.raises(TraceImportError, match="barrier count"):
            import_trace(path, fmt="csv", options=ImportOptions(num_cores=2))

    def test_barrier_count_disagreement(self, tmp_path):
        path = _write(tmp_path, "t.csv",
                      "0,0,R,4\n0,1,B,0\n1,0,R,4\n")
        with pytest.raises(TraceImportError, match="barrier count"):
            import_trace(path, fmt="csv")


class TestOptionValidation:
    def test_bad_split(self):
        with pytest.raises(ValueError, match="unknown split"):
            ImportOptions(split="shuffle")

    def test_bad_line_bytes(self):
        with pytest.raises(ValueError, match="power of two"):
            ImportOptions(line_bytes=48)

    def test_bad_num_cores(self):
        with pytest.raises(ValueError, match="num_cores"):
            ImportOptions(num_cores=0)

    def test_unknown_format_rejected(self, tmp_path):
        path = _write(tmp_path, "t.csv", "0,0,R,4\n")
        with pytest.raises(ValueError, match="unknown trace format"):
            import_trace(path, fmt="sqlite")

    def test_binary_blob_rejected_as_not_text(self, tmp_path):
        path = tmp_path / "blob.npz"
        path.write_bytes(bytes(range(256)) * 4)
        with pytest.raises(TraceImportError, match="not a readable capture"):
            import_trace(path, fmt="csv")
