"""Benchmark catalog and trace building."""

import numpy as np
import pytest

from repro.common.params import MachineConfig
from repro.common.types import AccessType, LineClass
from repro.workloads.benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    BenchmarkProfile,
    build_trace,
    get_profile,
)


class TestCatalog:
    def test_twenty_one_benchmarks(self):
        """Table 2 lists exactly 21 applications."""
        assert len(BENCHMARKS) == 21
        assert len(BENCHMARK_ORDER) == 21

    def test_order_covers_catalog(self):
        assert set(BENCHMARK_ORDER) == set(BENCHMARKS)

    def test_paper_inputs_recorded(self):
        assert BENCHMARKS["RADIX"].paper_input == "4M integers, radix 1024"
        assert BENCHMARKS["BARNES"].paper_input == "64K particles"
        assert BENCHMARKS["DEDUP"].paper_input == "31 MB data"

    def test_mix_fractions_sum_to_one(self):
        for profile in BENCHMARKS.values():
            total = (
                profile.f_ifetch + profile.f_private + profile.f_shared_ro
                + profile.f_shared_rw + profile.f_migratory
            )
            assert total == pytest.approx(1.0, abs=0.01), profile.name

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            get_profile("SPECJBB")

    def test_paper_narrative_knobs(self):
        """Spot-check the catalog against the paper's descriptions."""
        assert BENCHMARKS["BARNES"].f_shared_rw >= 0.75       # Fig. 1
        assert BENCHMARKS["LU-NC"].f_migratory > 0            # migratory
        assert BENCHMARKS["BLACKSCHOLES"].false_sharing       # page-level FS
        assert BENCHMARKS["DEDUP"].f_private >= 0.85          # private-heavy
        assert BENCHMARKS["BODYTRACK"].instr_ws_x_l1i > 1.0   # I-MPKI
        assert BENCHMARKS["FACESIM"].instr_ws_x_l1i > 1.0
        assert BENCHMARKS["RAYTRACE"].instr_ws_x_l1i > 1.0
        assert BENCHMARKS["OCEAN-C"].shared_rw_ws_x_llc > 1.0  # off-chip bound
        assert BENCHMARKS["FLUIDANIMATE"].shared_rw_ws_x_llc > 1.0

    def test_invalid_profile_rejected(self):
        with pytest.raises(ValueError, match="fractions sum"):
            BenchmarkProfile(name="BAD", description="", f_private=0.9,
                             f_ifetch=0.5, f_shared_ro=0.0, f_shared_rw=0.0)

    def test_invalid_pattern_rejected(self):
        with pytest.raises(ValueError, match="pattern"):
            BenchmarkProfile(name="BAD", description="",
                             private_pattern="random-walk")


class TestTraceBuilding:
    @pytest.fixture(scope="class")
    def config(self):
        return MachineConfig.small()

    @pytest.fixture(scope="class")
    def barnes(self, config):
        return build_trace(get_profile("BARNES"), config, scale=0.2, seed=7)

    def test_one_trace_per_core(self, barnes, config):
        assert barnes.num_cores == config.num_cores

    def test_scale_controls_length(self, config):
        profile = get_profile("DEDUP")
        short = build_trace(profile, config, scale=0.1, seed=1)
        longer = build_trace(profile, config, scale=0.2, seed=1)
        assert len(longer.cores[0]) > len(short.cores[0])

    def test_deterministic_for_seed(self, config):
        profile = get_profile("BARNES")
        first = build_trace(profile, config, scale=0.1, seed=5)
        second = build_trace(profile, config, scale=0.1, seed=5)
        for trace_a, trace_b in zip(first.cores, second.cores):
            assert np.array_equal(trace_a.lines, trace_b.lines)
            assert np.array_equal(trace_a.types, trace_b.types)

    def test_different_seeds_differ(self, config):
        profile = get_profile("BARNES")
        first = build_trace(profile, config, scale=0.1, seed=5)
        second = build_trace(profile, config, scale=0.1, seed=6)
        assert not np.array_equal(first.cores[0].lines, second.cores[0].lines)

    def test_every_line_classifiable(self, barnes):
        for trace in barnes.cores[:4]:
            for line, atype in zip(trace.lines[:200], trace.types[:200]):
                if atype == AccessType.BARRIER:
                    continue
                barnes.classify(int(line))  # must not raise

    def test_ifetch_lines_are_instruction_class(self, barnes):
        trace = barnes.cores[0]
        ifetch_mask = trace.types == AccessType.IFETCH
        assert ifetch_mask.any()
        for line in trace.lines[ifetch_mask][:50]:
            assert barnes.classify(int(line)) == LineClass.INSTRUCTION

    def test_barrier_counts_equal(self, barnes):
        counts = {trace.barrier_count() for trace in barnes.cores}
        assert len(counts) == 1
        assert counts.pop() == get_profile("BARNES").barriers

    def test_writes_only_on_writable_classes(self, barnes):
        trace = barnes.cores[0]
        write_mask = trace.types == AccessType.WRITE
        for line in trace.lines[write_mask][:100]:
            line_class = barnes.classify(int(line))
            assert line_class in (LineClass.PRIVATE, LineClass.SHARED_RW)

    def test_false_sharing_layout(self, config):
        """BLACKSCHOLES private regions straddle page boundaries."""
        traces = build_trace(get_profile("BLACKSCHOLES"), config, scale=0.05, seed=1)
        private_regions = [
            region for region, cls in traces.regions if cls == LineClass.PRIVATE
        ]
        lines_per_page = config.lines_per_page
        unaligned = sum(1 for region in private_regions
                        if region.base % lines_per_page)
        assert unaligned > 0

    def test_aligned_layout_elsewhere(self, config):
        traces = build_trace(get_profile("DEDUP"), config, scale=0.05, seed=1)
        private_regions = [
            region for region, cls in traces.regions if cls == LineClass.PRIVATE
        ]
        assert all(region.base % config.lines_per_page == 0
                   for region in private_regions)

    def test_migratory_region_present_for_lu_nc(self, config):
        traces = build_trace(get_profile("LU-NC"), config, scale=0.05, seed=1)
        shared_rw_regions = [
            region for region, cls in traces.regions if cls == LineClass.SHARED_RW
        ]
        # LU-NC allocates the plain shared-RW region plus the migratory one.
        assert len(shared_rw_regions) == 2

    def test_rejects_bad_scale(self, config):
        with pytest.raises(ValueError):
            build_trace(get_profile("BARNES"), config, scale=0.0, seed=1)
