"""The ``python -m repro trace`` command group."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.workloads.imports import TraceImportError
from repro.workloads.io import load_trace_set


def _synthesize(tmp_path, fmt, cores=4, records=60, seed=3):
    out = tmp_path / f"cap.{fmt}"
    assert main([
        "trace", "synthesize-fixture", "--format", fmt,
        "--cores", str(cores), "--records", str(records),
        "--seed", str(seed), "--out", str(out),
    ]) == 0
    return out


class TestSynthesizeFixture:
    @pytest.mark.parametrize("fmt", ["champsim", "din", "csv"])
    def test_each_format_imports_back(self, tmp_path, fmt, capsys):
        capture = _synthesize(tmp_path, fmt)
        npz = tmp_path / f"{fmt}.npz"
        assert main([
            "trace", "import", str(capture), "--cores", "4",
            "--out", str(npz),
        ]) == 0
        out = capsys.readouterr().out
        assert "synthesized" in out and "imported" in out
        traces = load_trace_set(npz)
        assert traces.num_cores == 4
        assert traces.provenance["format"] == fmt
        traces.validate_coverage()

    def test_unsupported_core_count_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "trace", "synthesize-fixture", "--format", "csv",
                "--cores", "5", "--out", str(tmp_path / "x.csv"),
            ])


class TestImport:
    def test_format_override_beats_detection(self, tmp_path):
        # A .csv extension with din content: --format din must win.
        capture = tmp_path / "odd.csv"
        capture.write_text("0 0x1000\n1 0x1040\n")
        npz = tmp_path / "odd.npz"
        assert main([
            "trace", "import", str(capture), "--format", "din",
            "--out", str(npz),
        ]) == 0
        assert load_trace_set(npz).provenance["format"] == "din"

    def test_name_option(self, tmp_path):
        capture = tmp_path / "cap.csv"
        capture.write_text("0,0,R,4\n")
        npz = tmp_path / "named.npz"
        assert main([
            "trace", "import", str(capture), "--name", "mytrace",
            "--out", str(npz),
        ]) == 0
        assert load_trace_set(npz).name == "mytrace"

    def test_malformed_capture_surfaces_location(self, tmp_path):
        capture = tmp_path / "bad.csv"
        capture.write_text("0,5,R,4\n0,1,R,5\n")
        with pytest.raises(TraceImportError, match=r"bad\.csv:2"):
            main([
                "trace", "import", str(capture),
                "--out", str(tmp_path / "bad.npz"),
            ])


class TestBinaryImport:
    def test_champsim_bin_fixture_imports_back(self, tmp_path, capsys):
        capture = tmp_path / "cap.trace.xz"
        assert main([
            "trace", "synthesize-fixture", "--format", "champsim-bin",
            "--cores", "4", "--records", "50", "--out", str(capture),
        ]) == 0
        npz = tmp_path / "bin.npz"
        assert main([
            "trace", "import", str(capture), "--cores", "4",
            "--out", str(npz),
        ]) == 0
        traces = load_trace_set(npz)
        assert traces.provenance["format"] == "champsim-bin"
        assert traces.num_cores == 4
        assert traces.total_accesses() == 200
        traces.validate_coverage()

    def test_max_inst_caps_the_import(self, tmp_path):
        capture = tmp_path / "cap.trace.xz"
        main([
            "trace", "synthesize-fixture", "--format", "champsim-bin",
            "--cores", "4", "--records", "50", "--out", str(capture),
        ])
        npz = tmp_path / "capped.npz"
        assert main([
            "trace", "import", str(capture), "--cores", "4",
            "--max-inst", "30", "--out", str(npz),
        ]) == 0
        traces = load_trace_set(npz)
        assert traces.total_accesses() == 30
        assert traces.provenance["max_records"] == 30


class TestSimulate:
    def _capture(self, tmp_path, records=80):
        capture = tmp_path / "cap.trace.xz"
        main([
            "trace", "synthesize-fixture", "--format", "champsim-bin",
            "--cores", "4", "--records", str(records), "--out", str(capture),
        ])
        return capture

    def _json_line(self, capsys):
        return json.loads(capsys.readouterr().out.strip().splitlines()[-1])

    def test_streamed_and_materialized_digests_agree(self, tmp_path, capsys):
        capture = self._capture(tmp_path)
        assert main([
            "trace", "simulate", str(capture), "--cores", "4", "--json",
        ]) == 0
        streamed = self._json_line(capsys)
        assert main([
            "trace", "simulate", str(capture), "--cores", "4",
            "--no-stream", "--json",
        ]) == 0
        materialized = self._json_line(capsys)
        assert streamed["streamed"] and not materialized["streamed"]
        assert streamed["stats_sha256"] == materialized["stats_sha256"]
        assert streamed["records"] == materialized["records"] == 320
        assert streamed["max_rss_kib"] > 0
        assert streamed["completion_time"] == materialized["completion_time"]

    def test_archive_path_and_chunk_knob(self, tmp_path, capsys):
        capture = self._capture(tmp_path)
        npz = tmp_path / "cap.npz"
        main(["trace", "import", str(capture), "--cores", "4",
              "--out", str(npz)])
        capsys.readouterr()
        assert main([
            "trace", "simulate", str(npz), "--stream", "--chunk", "16",
            "--json",
        ]) == 0
        streamed = self._json_line(capsys)
        assert main(["trace", "simulate", str(npz), "--json"]) == 0
        plain = self._json_line(capsys)
        assert streamed["stats_sha256"] == plain["stats_sha256"]

    def test_kernel_and_scheme_options(self, tmp_path, capsys):
        capture = self._capture(tmp_path, records=40)
        capsys.readouterr()
        for kernel in ("reference", "batched"):
            assert main([
                "trace", "simulate", str(capture), "--cores", "4",
                "--scheme", "S-NUCA", "--kernel", kernel, "--json",
            ]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.strip().splitlines()]
        assert lines[0]["stats_sha256"] == lines[1]["stats_sha256"]
        assert {line["kernel"] for line in lines} == {"reference", "batched"}

    def test_max_inst_budget(self, tmp_path, capsys):
        capture = self._capture(tmp_path)
        assert main([
            "trace", "simulate", str(capture), "--cores", "4",
            "--max-inst", "100", "--json",
        ]) == 0
        assert self._json_line(capsys)["records"] == 100

    def test_text_capture_rejected_with_hint(self, tmp_path):
        text = tmp_path / "cap.csv"
        text.write_text("0,0,R,4\n")
        with pytest.raises(SystemExit, match="imported first"):
            main(["trace", "simulate", str(text)])

    def test_human_readable_output(self, tmp_path, capsys):
        capture = self._capture(tmp_path, records=40)
        assert main([
            "trace", "simulate", str(capture), "--cores", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "streamed" in out and "stats sha256:" in out


class TestInspect:
    def test_summarizes_an_archive(self, tmp_path, capsys):
        capture = _synthesize(tmp_path, "csv")
        npz = tmp_path / "t.npz"
        main(["trace", "import", str(capture), "--out", str(npz)])
        capsys.readouterr()
        assert main(["trace", "inspect", str(npz)]) == 0
        out = capsys.readouterr().out
        assert "cores:    4" in out
        assert "regions:" in out
        assert "provenance:" in out
        assert "source_sha256" in out


class TestForwarding:
    def test_experiments_group_forwards(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "Registered experiments" in capsys.readouterr().out

    def test_testing_group_forwards(self, tmp_path, capsys):
        assert main([
            "testing", "csv-roundtrip", "--cases", "1", "--seed", "2",
            "--workdir", str(tmp_path / "rt"),
        ]) == 0
        assert "1 exact, 0 diverged" in capsys.readouterr().out

    def test_unknown_group_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFixtureRoundTripExactness:
    def test_csv_fixture_reimports_identically(self, tmp_path):
        """The conformance contract: synthesize → import → the .npz and
        a re-saved copy carry identical arrays."""
        from repro.workloads.io import save_trace_set

        capture = _synthesize(tmp_path, "csv")
        npz = tmp_path / "a.npz"
        main(["trace", "import", str(capture), "--out", str(npz)])
        first = load_trace_set(npz)
        second = load_trace_set(save_trace_set(first, tmp_path / "b.npz"))
        assert first.regions == second.regions
        assert first.provenance == second.provenance
        for a, b in zip(first.cores, second.cores):
            assert np.array_equal(a.types, b.types)
            assert np.array_equal(a.lines, b.lines)
            assert np.array_equal(a.gaps, b.gaps)
