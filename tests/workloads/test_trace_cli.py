"""The ``python -m repro trace`` command group."""

from __future__ import annotations

import numpy as np
import pytest

from repro.__main__ import main
from repro.workloads.imports import TraceImportError
from repro.workloads.io import load_trace_set


def _synthesize(tmp_path, fmt, cores=4, records=60, seed=3):
    out = tmp_path / f"cap.{fmt}"
    assert main([
        "trace", "synthesize-fixture", "--format", fmt,
        "--cores", str(cores), "--records", str(records),
        "--seed", str(seed), "--out", str(out),
    ]) == 0
    return out


class TestSynthesizeFixture:
    @pytest.mark.parametrize("fmt", ["champsim", "din", "csv"])
    def test_each_format_imports_back(self, tmp_path, fmt, capsys):
        capture = _synthesize(tmp_path, fmt)
        npz = tmp_path / f"{fmt}.npz"
        assert main([
            "trace", "import", str(capture), "--cores", "4",
            "--out", str(npz),
        ]) == 0
        out = capsys.readouterr().out
        assert "synthesized" in out and "imported" in out
        traces = load_trace_set(npz)
        assert traces.num_cores == 4
        assert traces.provenance["format"] == fmt
        traces.validate_coverage()

    def test_unsupported_core_count_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "trace", "synthesize-fixture", "--format", "csv",
                "--cores", "5", "--out", str(tmp_path / "x.csv"),
            ])


class TestImport:
    def test_format_override_beats_detection(self, tmp_path):
        # A .csv extension with din content: --format din must win.
        capture = tmp_path / "odd.csv"
        capture.write_text("0 0x1000\n1 0x1040\n")
        npz = tmp_path / "odd.npz"
        assert main([
            "trace", "import", str(capture), "--format", "din",
            "--out", str(npz),
        ]) == 0
        assert load_trace_set(npz).provenance["format"] == "din"

    def test_name_option(self, tmp_path):
        capture = tmp_path / "cap.csv"
        capture.write_text("0,0,R,4\n")
        npz = tmp_path / "named.npz"
        assert main([
            "trace", "import", str(capture), "--name", "mytrace",
            "--out", str(npz),
        ]) == 0
        assert load_trace_set(npz).name == "mytrace"

    def test_malformed_capture_surfaces_location(self, tmp_path):
        capture = tmp_path / "bad.csv"
        capture.write_text("0,5,R,4\n0,1,R,5\n")
        with pytest.raises(TraceImportError, match=r"bad\.csv:2"):
            main([
                "trace", "import", str(capture),
                "--out", str(tmp_path / "bad.npz"),
            ])


class TestInspect:
    def test_summarizes_an_archive(self, tmp_path, capsys):
        capture = _synthesize(tmp_path, "csv")
        npz = tmp_path / "t.npz"
        main(["trace", "import", str(capture), "--out", str(npz)])
        capsys.readouterr()
        assert main(["trace", "inspect", str(npz)]) == 0
        out = capsys.readouterr().out
        assert "cores:    4" in out
        assert "regions:" in out
        assert "provenance:" in out
        assert "source_sha256" in out


class TestForwarding:
    def test_experiments_group_forwards(self, capsys):
        assert main(["experiments", "--list"]) == 0
        assert "Registered experiments" in capsys.readouterr().out

    def test_testing_group_forwards(self, tmp_path, capsys):
        assert main([
            "testing", "csv-roundtrip", "--cases", "1", "--seed", "2",
            "--workdir", str(tmp_path / "rt"),
        ]) == 0
        assert "1 exact, 0 diverged" in capsys.readouterr().out

    def test_unknown_group_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestFixtureRoundTripExactness:
    def test_csv_fixture_reimports_identically(self, tmp_path):
        """The conformance contract: synthesize → import → the .npz and
        a re-saved copy carry identical arrays."""
        from repro.workloads.io import save_trace_set

        capture = _synthesize(tmp_path, "csv")
        npz = tmp_path / "a.npz"
        main(["trace", "import", str(capture), "--out", str(npz)])
        first = load_trace_set(npz)
        second = load_trace_set(save_trace_set(first, tmp_path / "b.npz"))
        assert first.regions == second.regions
        assert first.provenance == second.provenance
        for a, b in zip(first.cores, second.cores):
            assert np.array_equal(a.types, b.types)
            assert np.array_equal(a.lines, b.lines)
            assert np.array_equal(a.gaps, b.gaps)
