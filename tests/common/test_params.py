"""MachineConfig: Table 1 defaults and validation."""

import dataclasses

import pytest

from repro.common.params import CacheGeometry, MachineConfig


class TestTable1Defaults:
    """The paper configuration must match Table 1 exactly."""

    def test_core_count(self, paper_config):
        assert paper_config.num_cores == 64
        assert paper_config.frequency_ghz == 1.0

    def test_l1i_geometry(self, paper_config):
        assert paper_config.l1i.capacity_bytes == 16 * 1024
        assert paper_config.l1i.ways == 4

    def test_l1d_geometry(self, paper_config):
        assert paper_config.l1d.capacity_bytes == 32 * 1024
        assert paper_config.l1d.ways == 4

    def test_llc_geometry(self, paper_config):
        assert paper_config.llc_slice.capacity_bytes == 256 * 1024
        assert paper_config.llc_slice.ways == 8

    def test_llc_latencies(self, paper_config):
        assert paper_config.llc_tag_latency == 2
        assert paper_config.llc_data_latency == 4

    def test_directory_protocol(self, paper_config):
        assert paper_config.ackwise_pointers == 4

    def test_dram(self, paper_config):
        assert paper_config.num_mem_controllers == 8
        assert paper_config.dram_bandwidth_gbps == 5.0
        assert paper_config.dram_latency_ns == 75.0
        assert paper_config.dram_latency_cycles == 75

    def test_network(self, paper_config):
        assert paper_config.hop_latency == 2
        assert paper_config.flit_width_bits == 64
        assert paper_config.cache_line_flits == 8
        assert paper_config.header_flits == 1

    def test_protocol_parameters(self, paper_config):
        assert paper_config.replication_threshold == 3
        assert paper_config.classifier_k == 3
        assert paper_config.cluster_size == 1
        assert paper_config.reuse_counter_bits == 2


class TestDerivedQuantities:
    def test_mesh_side(self, paper_config, small_config):
        assert paper_config.mesh_side == 8
        assert small_config.mesh_side == 4

    def test_dram_service_cycles(self, paper_config):
        # 64 bytes at 5 GB/s and 1 GHz -> 12.8 cycles, rounded to 13.
        assert paper_config.dram_service_cycles == 13

    def test_lines_per_page(self, paper_config):
        assert paper_config.lines_per_page == 64

    def test_page_of(self, paper_config):
        assert paper_config.page_of(0) == 0
        assert paper_config.page_of(63) == 0
        assert paper_config.page_of(64) == 1

    def test_reuse_counter_max(self, paper_config):
        assert paper_config.reuse_counter_max == 3


class TestValidation:
    def test_non_square_core_count_rejected(self):
        with pytest.raises(ValueError, match="perfect square"):
            MachineConfig(num_cores=6)

    def test_cluster_must_divide_cores(self):
        with pytest.raises(ValueError):
            MachineConfig(cluster_size=3)

    def test_cluster_must_be_square(self):
        with pytest.raises(ValueError, match="perfect square"):
            MachineConfig(cluster_size=8)

    def test_replication_threshold_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(replication_threshold=0)

    def test_classifier_k_positive(self):
        with pytest.raises(ValueError):
            MachineConfig(classifier_k=0)

    def test_too_many_controllers(self):
        with pytest.raises(ValueError):
            MachineConfig(num_cores=4, num_mem_controllers=8)

    def test_with_overrides_is_pure(self, paper_config):
        tuned = paper_config.with_overrides(replication_threshold=5)
        assert tuned.replication_threshold == 5
        assert paper_config.replication_threshold == 3

    def test_frozen(self, paper_config):
        with pytest.raises(dataclasses.FrozenInstanceError):
            paper_config.num_cores = 16


class TestCacheGeometry:
    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=3, ways=2)

    def test_rejects_zero_ways(self):
        with pytest.raises(ValueError):
            CacheGeometry(sets=4, ways=0)

    def test_plain_set_index_uses_low_bits(self):
        geometry = CacheGeometry(sets=8, ways=2)
        assert geometry.set_index(0) == 0
        assert geometry.set_index(7) == 7
        assert geometry.set_index(8) == 0

    def test_hashed_index_spreads_interleaved_lines(self):
        """Lines with a fixed residue mod 16 must still cover all sets."""
        geometry = CacheGeometry(sets=64, ways=8, index_shift=4)
        sets_used = {geometry.set_index(16 * k + 5) for k in range(256)}
        assert len(sets_used) == 64

    def test_hashed_index_spreads_contiguous_lines(self):
        """A contiguous region (R-NUCA private data) must cover all sets."""
        geometry = CacheGeometry(sets=64, ways=8, index_shift=4)
        sets_used = {geometry.set_index(base + offset)
                     for base in (0, 4096) for offset in range(128)}
        assert len(sets_used) == 64

    def test_small_config_preserves_ratios(self, small_config, paper_config):
        paper_ratio = paper_config.llc_slice.lines / paper_config.l1d.lines
        small_ratio = small_config.llc_slice.lines / small_config.l1d.lines
        assert paper_ratio == small_ratio
