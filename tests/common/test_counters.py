"""Saturating counter semantics (the paper's 2-bit reuse counters)."""

import pytest

from repro.common.counters import SaturatingCounter


class TestSaturatingCounter:
    def test_starts_at_initial(self):
        assert SaturatingCounter(3).value == 0
        assert SaturatingCounter(3, initial=1).value == 1

    def test_increment(self):
        counter = SaturatingCounter(3)
        assert counter.increment() == 1
        assert counter.increment() == 2

    def test_saturates_at_max(self):
        counter = SaturatingCounter(3, initial=3)
        assert counter.increment() == 3
        assert counter.saturated()

    def test_two_bit_counter_matches_paper(self):
        """A 2-bit counter saturates at 3, exactly reaching RT=3."""
        counter = SaturatingCounter((1 << 2) - 1)
        for _ in range(10):
            counter.increment()
        assert counter.value == 3

    def test_reset(self):
        counter = SaturatingCounter(3, initial=2)
        counter.reset()
        assert counter.value == 0
        counter.reset(1)
        assert counter.value == 1

    def test_bulk_increment(self):
        counter = SaturatingCounter(7)
        counter.increment(5)
        assert counter.value == 5
        counter.increment(5)
        assert counter.value == 7

    def test_invalid_configurations(self):
        with pytest.raises(ValueError):
            SaturatingCounter(0)
        with pytest.raises(ValueError):
            SaturatingCounter(3, initial=4)
        counter = SaturatingCounter(3)
        with pytest.raises(ValueError):
            counter.increment(-1)
        with pytest.raises(ValueError):
            counter.reset(9)

    def test_int_conversion(self):
        assert int(SaturatingCounter(3, initial=2)) == 2
