"""Region allocation and address helpers."""

import pytest

from repro.common.addr import Region, RegionAllocator


class TestRegion:
    def test_contains(self):
        region = Region(base=100, size=10)
        assert 100 in region
        assert 109 in region
        assert 110 not in region
        assert 99 not in region

    def test_line_offsets(self):
        region = Region(base=100, size=10)
        assert region.line(0) == 100
        assert region.line(9) == 109

    def test_line_out_of_range(self):
        region = Region(base=100, size=10)
        with pytest.raises(IndexError):
            region.line(10)

    def test_len_and_end(self):
        region = Region(base=4, size=6)
        assert len(region) == 6
        assert region.end == 10

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Region(base=0, size=-1)


class TestRegionAllocator:
    def test_regions_are_disjoint(self):
        allocator = RegionAllocator(lines_per_page=64)
        regions = [allocator.allocate(100) for _ in range(10)]
        for index, first in enumerate(regions):
            for second in regions[index + 1:]:
                assert first.end <= second.base or second.end <= first.base

    def test_page_alignment(self):
        allocator = RegionAllocator(lines_per_page=64)
        allocator.allocate(10)
        second = allocator.allocate(10)
        assert second.base % 64 == 0

    def test_unaligned_allocation_shares_pages(self):
        """False-sharing workloads need regions that straddle pages."""
        allocator = RegionAllocator(lines_per_page=64)
        first = allocator.allocate_unaligned(10)
        second = allocator.allocate_unaligned(10)
        assert second.base == first.end
        assert first.end % 64 != 0  # the boundary is mid-page

    def test_allocate_many(self):
        allocator = RegionAllocator(lines_per_page=64)
        regions = allocator.allocate_many(4, 32)
        assert len(regions) == 4
        assert all(region.size == 32 for region in regions)
        assert all(region.base % 64 == 0 for region in regions)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            RegionAllocator(lines_per_page=0)
