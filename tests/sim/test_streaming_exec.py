"""Streaming executor vs materialized kernels on real scheme engines.

The unit-level chunk-boundary cases live in
``tests/workloads/test_streaming.py``; here full machines (caches,
mesh, DRAM, replication) run real benchmark traces both ways and must
produce bit-identical stats — the tier-1 counterpart of the CI
``streaming-smoke`` giga-trace check.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.sim.streaming import StreamHandoff, choose_streaming_kernel
from repro.testing.differential import verify_streaming
from repro.workloads.benchmarks import build_trace, get_profile
from repro.workloads.streaming import StreamingTraceSet

KERNELS = ("reference", "fast", "batched", "vector")


@pytest.fixture(scope="module")
def trace_and_config():
    from repro.common.params import MachineConfig

    config = MachineConfig.tiny()
    return build_trace(get_profile("RADIX"), config, seed=5), config


class TestStreamedEqualsMaterialized:
    @pytest.mark.parametrize("scheme", ["S-NUCA", "R-NUCA", "VR", "RT-3"])
    def test_schemes_bit_identical(self, trace_and_config, scheme):
        traces, config = trace_and_config
        verify_streaming(
            lambda: make_scheme(scheme, config),
            traces,
            chunk_records=193,
            context=scheme,
        )

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_every_kernel_across_chunk_sizes(self, trace_and_config, kernel):
        traces, config = trace_and_config
        expected = simulate(
            make_scheme("RT-3", config), traces, kernel=kernel
        ).to_dict()
        for chunk in (1, 97, 1 << 20):
            streamed = StreamingTraceSet.from_trace_set(traces, chunk)
            got = simulate(
                make_scheme("RT-3", config), streamed, kernel=kernel
            ).to_dict()
            assert got == expected, (kernel, chunk)

    def test_fractional_gaps_bit_identical(self, trace_and_config):
        traces, config = trace_and_config
        rng = np.random.default_rng(2)
        cores = [
            dataclasses.replace(
                trace,
                gaps=trace.gaps.astype(np.float64)
                + rng.uniform(0.0, 0.9, size=len(trace)),
            )
            for trace in traces.cores
        ]
        frac = dataclasses.replace(traces, cores=cores)
        streamed = StreamingTraceSet.from_trace_set(frac, chunk_records=151)
        assert not streamed.gaps_integral
        for kernel in KERNELS:
            expected = simulate(
                make_scheme("RT-3", config), frac, kernel=kernel
            ).to_dict()
            got = simulate(
                make_scheme("RT-3", config), streamed, kernel=kernel
            ).to_dict()
            assert got == expected, kernel

    def test_chunk_env_knob_drives_the_default(
        self, trace_and_config, monkeypatch
    ):
        traces, config = trace_and_config
        expected = simulate(make_scheme("RT-3", config), traces).to_dict()
        monkeypatch.setenv("REPRO_STREAM_CHUNK", "61")
        streamed = StreamingTraceSet.from_trace_set(traces)
        got = simulate(make_scheme("RT-3", config), streamed).to_dict()
        assert got == expected

    def test_kernel_env_applies_to_streaming(
        self, trace_and_config, monkeypatch
    ):
        traces, config = trace_and_config
        monkeypatch.setenv("REPRO_SIM_KERNEL", "reference")
        expected = simulate(make_scheme("RT-3", config), traces).to_dict()
        streamed = StreamingTraceSet.from_trace_set(traces, 89)
        got = simulate(make_scheme("RT-3", config), streamed).to_dict()
        assert got == expected


class TestDirectCaptureStreaming:
    def test_capture_stream_matches_materialized_import(self, tmp_path):
        from repro.common.params import MachineConfig
        from repro.workloads.champsim_bin import synthesize_champsim_bin
        from repro.workloads.imports import ImportOptions, import_trace

        config = MachineConfig.tiny()
        path = synthesize_champsim_bin(
            tmp_path / "cap.trace.xz", 6000, seed=3
        )
        materialized = import_trace(path, options=ImportOptions(num_cores=4))
        for overlap in (False, True):
            streamed = StreamingTraceSet.from_champsim_bin(
                path, num_cores=4, chunk_records=512, overlap=overlap
            )
            assert streamed.total_records == materialized.total_accesses()
            for kernel in ("fast", "batched"):
                expected = simulate(
                    make_scheme("RT-3", config), materialized, kernel=kernel
                ).to_dict()
                got = simulate(
                    make_scheme("RT-3", config), streamed, kernel=kernel
                ).to_dict()
                assert got == expected, (overlap, kernel)

    def test_window_coverage_violation_caught(self, trace_and_config):
        traces, config = trace_and_config
        streamed = StreamingTraceSet.from_trace_set(traces, 128)
        streamed = dataclasses.replace(streamed, regions=traces.regions[:1])
        with pytest.raises(ValueError, match="no region"):
            simulate(make_scheme("RT-3", config), streamed)


class TestKernelSelection:
    def _stream(self, records, barriers, cores=4, gaps_integral=True):
        return StreamingTraceSet(
            name="meta",
            num_cores=cores,
            regions=[],
            source_factory=lambda: None,
            gaps_integral=gaps_integral,
            total_records=records,
            total_barriers=barriers,
        )

    def test_short_segments_pick_the_default(self):
        assert choose_streaming_kernel(self._stream(100, 10)) == "fast"

    def test_long_segments_pick_batched(self):
        assert choose_streaming_kernel(self._stream(100_000, 0)) == "batched"

    def test_unknown_totals_pick_the_default(self):
        assert choose_streaming_kernel(self._stream(None, None)) == "fast"

    def test_vector_needs_engine_support_and_integral_gaps(self):
        class VectorEngine:
            def supports_vector_spans(self):
                return True

            def supports_replica_batching(self):
                return False

        stream = self._stream(1_000_000, 0)
        assert choose_streaming_kernel(stream, VectorEngine()) == "vector"
        fractional = self._stream(1_000_000, 0, gaps_integral=False)
        assert choose_streaming_kernel(fractional, VectorEngine()) == "batched"

    def test_auto_streamed_matches_auto_materialized_stats(
        self, trace_and_config
    ):
        traces, config = trace_and_config
        streamed = StreamingTraceSet.from_trace_set(traces, 173)
        expected = simulate(
            make_scheme("RT-3", config), traces, kernel="auto"
        ).to_dict()
        got = simulate(
            make_scheme("RT-3", config), streamed, kernel="auto"
        ).to_dict()
        assert got == expected


class TestStreamHandoff:
    def test_fresh_state_shape(self):
        handoff = StreamHandoff.fresh(3)
        assert sorted(handoff.ready) == [(0.0, 0), (0.0, 1), (0.0, 2)]
        assert handoff.positions == [0, 0, 0]
        assert handoff.windows == [None, None, None]
        assert handoff.waiting == {} and handoff.finished == set()
        assert handoff.exhausted == [False, False, False]
