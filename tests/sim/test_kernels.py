"""Kernel selection, decoded-trace views, and the fast-access fallback."""

from __future__ import annotations

import pytest

from repro.common.types import AccessType
from repro.schemes.factory import make_scheme
from repro.schemes.snuca import SNucaScheme
from repro.sim.kernel import (
    DEFAULT_KERNEL,
    KERNELS,
    BatchedKernel,
    FastKernel,
    ReferenceKernel,
    SimulationKernel,
    VectorKernel,
    kernel_names,
    resolve_kernel,
)
from repro.sim.simulator import simulate
from repro.testing.differential import assert_stats_equal
from repro.workloads.benchmarks import build_trace, get_profile


@pytest.fixture(scope="module")
def traces_small(request):
    from repro.common.params import MachineConfig

    config = MachineConfig.tiny()
    return config, build_trace(get_profile("BARNES"), config, scale=0.05, seed=2)


class TestKernelResolution:
    def test_registry_contains_all_kernels(self):
        assert set(kernel_names()) == {"reference", "fast", "batched", "vector"}
        assert KERNELS["fast"] is FastKernel
        assert KERNELS["batched"] is BatchedKernel
        assert KERNELS["vector"] is VectorKernel
        assert DEFAULT_KERNEL == "fast"

    def test_resolve_by_name(self):
        assert isinstance(resolve_kernel("reference"), ReferenceKernel)
        assert isinstance(resolve_kernel("fast"), FastKernel)
        assert isinstance(resolve_kernel("batched"), BatchedKernel)
        assert isinstance(resolve_kernel("vector"), VectorKernel)

    def test_resolve_passes_instances_through(self):
        kernel = FastKernel(perturb_seed=3)
        assert resolve_kernel(kernel) is kernel

    def test_resolve_accepts_classes(self):
        assert isinstance(resolve_kernel(ReferenceKernel), ReferenceKernel)

    def test_unknown_name_raises_with_available_kernels(self):
        with pytest.raises(ValueError, match="fast.*reference|reference.*fast"):
            resolve_kernel("turbo")

    def test_none_falls_back_to_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_KERNEL", "reference")
        assert isinstance(resolve_kernel(None), ReferenceKernel)
        monkeypatch.delenv("REPRO_SIM_KERNEL")
        assert isinstance(resolve_kernel(None), FastKernel)

    def test_simulate_rejects_unknown_kernel(self, traces_small):
        config, traces = traces_small
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            simulate(make_scheme("S-NUCA", config), traces, kernel="turbo")


class TestDecodedTraces:
    def test_decoded_is_cached(self, traces_small):
        _config, traces = traces_small
        trace = traces.cores[0]
        assert trace.decoded() is trace.decoded()

    def test_decoded_contents_match_arrays(self, traces_small):
        _config, traces = traces_small
        trace = traces.cores[0]
        decoded = trace.decoded()
        assert decoded.length == len(trace)
        assert decoded.lines == [int(line) for line in trace.lines]
        assert all(isinstance(atype, AccessType) for atype in decoded.atypes)
        assert [int(a) for a in decoded.atypes] == list(trace.types)

    def test_compute_cycles_exclude_barrier_gaps(self, traces_small):
        _config, traces = traces_small
        for trace in traces.cores:
            non_barrier = trace.types != AccessType.BARRIER
            assert trace.decoded().compute_cycles == float(
                trace.gaps[non_barrier].sum()
            )

    def test_run_stops_point_at_next_barrier(self, traces_small):
        _config, traces = traces_small
        for trace in traces.cores:
            decoded = trace.decoded()
            barriers = [
                i for i, t in enumerate(trace.types) if t == AccessType.BARRIER
            ]
            assert barriers, "BARNES traces carry barriers"
            for index in range(decoded.length):
                expected = next(
                    (b for b in barriers if b >= index), decoded.length
                )
                assert decoded.run_stops[index] == expected

    def test_gap_prefix_matches_cumulative_gaps(self, traces_small):
        _config, traces = traces_small
        trace = traces.cores[0]
        decoded = trace.decoded()
        assert decoded.gap_prefix[0] == 0.0
        assert len(decoded.gap_prefix) == decoded.length + 1
        total = 0.0
        for index, gap in enumerate(decoded.gaps):
            assert decoded.gap_prefix[index] == total
            total += gap
        assert decoded.gap_prefix[decoded.length] == total


class TestFractionalGaps:
    @pytest.mark.parametrize("kernel", ["fast", "batched", "vector"])
    def test_fractional_gaps_stay_bit_identical(self, kernel):
        """Non-integer gaps disable batched Compute charging; the
        optimized kernels must match the reference's per-record
        accumulation order exactly."""
        import numpy as np

        from repro.common.params import MachineConfig
        from repro.schemes.snuca import SNucaScheme
        from repro.workloads.trace import CoreTrace, TraceSet
        from repro.common.addr import Region
        from repro.common.types import AccessType, LineClass

        config = MachineConfig.tiny()
        rng = np.random.default_rng(7)
        cores = []
        for core in range(4):
            n = 20
            cores.append(
                CoreTrace(
                    types=np.full(n, int(AccessType.READ), dtype=np.uint8),
                    lines=np.arange(100 * core, 100 * core + n, dtype=np.int64),
                    gaps=rng.uniform(0.0, 3.0, size=n),  # fractional floats
                )
            )
        traces = TraceSet(
            "fractional", cores, [(Region(0, 4096), LineClass.SHARED_RW)]
        )
        assert not traces.decoded()[0].gaps_integral
        baseline = simulate(SNucaScheme(config), traces, kernel="reference")
        candidate = simulate(SNucaScheme(config), traces, kernel=kernel)
        assert_stats_equal(baseline, candidate, context=f"fractional gaps {kernel}")

    def test_release_decoded_drops_cache(self, traces_small):
        _config, traces = traces_small
        first = traces.cores[0].decoded()
        assert traces.cores[0].decoded() is first
        # Caching freezes the arrays: silent mutation would desync the view.
        assert not traces.cores[0].gaps.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            traces.cores[0].gaps[0] = 1
        traces.release_decoded()
        assert traces.cores[0].gaps.flags.writeable
        rebuilt = traces.cores[0].decoded()
        assert rebuilt is not first
        assert rebuilt.lines == first.lines


class TestFastAccessSpecialization:
    def test_base_schemes_provide_fast_access(self, traces_small):
        config, _traces = traces_small
        for scheme in ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3"):
            assert make_scheme(scheme, config).make_fast_access() is not None

    def test_access_override_disables_specialization(self, traces_small):
        config, traces = traces_small

        class LoggingSNuca(SNucaScheme):
            def __init__(self, cfg):
                super().__init__(cfg)
                self.seen = 0

            def access(self, core, atype, line_addr, now):
                self.seen += 1
                return super().access(core, atype, line_addr, now)

        assert LoggingSNuca(config).make_fast_access() is None
        # The fast kernel must fall back to the override, not bypass it.
        override_engine = LoggingSNuca(config)
        overridden = simulate(override_engine, traces, kernel="fast")
        assert override_engine.seen == traces.total_accesses()
        baseline = simulate(SNucaScheme(config), traces, kernel="reference")
        assert_stats_equal(baseline, overridden, context="override fallback")

    def test_instance_attribute_override_disables_specialization(self, traces_small):
        config, traces = traces_small
        engine = SNucaScheme(config)
        calls = []
        original = engine.access

        def wrapper(core, atype, line_addr, now):
            calls.append(core)
            return original(core, atype, line_addr, now)

        engine.access = wrapper
        assert engine.make_fast_access() is None
        simulate(engine, traces, kernel="fast")
        assert len(calls) == traces.total_accesses()

    def test_l1_energy_override_disables_specialization(self, traces_small):
        config, traces = traces_small

        class SilentL1Energy(SNucaScheme):
            def _l1_energy(self, is_ifetch, read):
                pass  # a subclass modelling free L1 accesses

        assert SilentL1Energy(config).make_fast_access() is None
        fast = simulate(SilentL1Energy(config), traces, kernel="fast")
        reference = simulate(SilentL1Energy(config), traces, kernel="reference")
        assert_stats_equal(reference, fast, context="_l1_energy override")

    def test_subclassing_without_access_override_keeps_specialization(
        self, traces_small
    ):
        config, _traces = traces_small

        class PlainSubclass(SNucaScheme):
            pass

        assert PlainSubclass(config).make_fast_access() is not None


class TestBatchedAccessSpecialization:
    def test_base_schemes_provide_batched_access(self, traces_small):
        config, _traces = traces_small
        for scheme in ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3"):
            assert make_scheme(scheme, config).make_batched_access() is not None

    def test_access_override_disables_batching_but_stays_exact(self, traces_small):
        """An access() override must flow through the generic path — the
        batched kernel falls back to the fast loop wholesale."""
        config, traces = traces_small

        class LoggingSNuca(SNucaScheme):
            def __init__(self, cfg):
                super().__init__(cfg)
                self.seen = 0

            def access(self, core, atype, line_addr, now):
                self.seen += 1
                return super().access(core, atype, line_addr, now)

        assert LoggingSNuca(config).make_batched_access() is None
        override_engine = LoggingSNuca(config)
        overridden = simulate(override_engine, traces, kernel="batched")
        assert override_engine.seen == traces.total_accesses()
        baseline = simulate(SNucaScheme(config), traces, kernel="reference")
        assert_stats_equal(baseline, overridden, context="batched override fallback")

    def test_tla_hints_disable_batching(self, traces_small):
        """TLA hints send a mesh message per Nth L1 hit — hits are no
        longer schedule-free, so the run specialization must decline."""
        config, traces = traces_small
        tla_config = config.with_overrides(tla_hints=True)
        engine = SNucaScheme(tla_config)
        assert engine.make_batched_access() is None
        # The kernel still produces bit-identical results via fallback.
        baseline = simulate(SNucaScheme(tla_config), traces, kernel="reference")
        batched = simulate(SNucaScheme(tla_config), traces, kernel="batched")
        assert_stats_equal(baseline, batched, context="tla fallback")

    def test_nonstock_l1_cache_disables_batching(self, traces_small):
        from repro.cache.l1 import L1Cache

        config, _traces = traces_small

        class InstrumentedL1(L1Cache):
            pass

        engine = SNucaScheme(config)
        engine.l1d[0] = InstrumentedL1(config.l1d)
        assert engine.make_batched_access() is None

    def test_batched_kernel_inline_finish_and_empty_cores(self):
        """Cores whose whole trace is one run (no barriers, empty heap at
        the end) finish inline; empty traces finish at t=0."""
        import numpy as np

        from repro.common.params import MachineConfig
        from repro.workloads.trace import CoreTrace, TraceSet
        from repro.common.addr import Region
        from repro.common.types import LineClass

        config = MachineConfig.tiny()
        cores = []
        for core in range(4):
            n = 40 if core == 0 else 0
            cores.append(
                CoreTrace(
                    types=np.full(n, int(AccessType.READ), dtype=np.uint8),
                    lines=(np.arange(n, dtype=np.int64) % 8) + 64 * core,
                    gaps=np.zeros(n, dtype=np.uint16),
                )
            )
        traces = TraceSet("solo", cores, [(Region(0, 4096), LineClass.SHARED_RW)])
        reference = simulate(SNucaScheme(config), traces, kernel="reference")
        batched = simulate(SNucaScheme(config), traces, kernel="batched")
        assert_stats_equal(reference, batched, context="solo core")
        assert batched.core_finish[1] == 0.0
        assert batched.completion_time == batched.core_finish[0] > 0


class TestVectorAccessSpecialization:
    def test_base_schemes_provide_vector_access(self, traces_small):
        config, _traces = traces_small
        for scheme in ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3", "Locality"):
            engine = make_scheme(scheme, config)
            assert engine.make_vector_access() is not None, scheme
            assert engine.supports_vector_spans(), scheme

    def test_charge_gaps_declines_vectorization(self, traces_small):
        """Fractional per-record Compute charging is order-observable —
        the vector closure declines and the kernel falls back to
        batched wholesale (which falls back to per-record charging)."""
        config, _traces = traces_small
        engine = make_scheme("S-NUCA", config)
        assert engine.make_vector_access(charge_gaps=True) is None

    def test_access_override_disables_vectorization_but_stays_exact(
        self, traces_small
    ):
        config, traces = traces_small

        class LoggingSNuca(SNucaScheme):
            def __init__(self, cfg):
                super().__init__(cfg)
                self.seen = 0

            def access(self, core, atype, line_addr, now):
                self.seen += 1
                return super().access(core, atype, line_addr, now)

        assert LoggingSNuca(config).make_vector_access() is None
        assert not LoggingSNuca(config).supports_vector_spans()
        override_engine = LoggingSNuca(config)
        overridden = simulate(override_engine, traces, kernel="vector")
        assert override_engine.seen == traces.total_accesses()
        baseline = simulate(SNucaScheme(config), traces, kernel="reference")
        assert_stats_equal(baseline, overridden, context="vector override fallback")

    def test_vector_kernel_matches_reference_on_benchmark_trace(
        self, traces_small
    ):
        config, traces = traces_small
        for scheme in ("S-NUCA", "RT-3", "Locality"):
            baseline = simulate(
                make_scheme(scheme, config), traces, kernel="reference"
            )
            vector = simulate(make_scheme(scheme, config), traces, kernel="vector")
            assert_stats_equal(baseline, vector, context=f"vector {scheme}")


class TestPerturbation:
    def test_perturbed_kernels_match_baseline(self, traces_small):
        config, traces = traces_small
        baseline = simulate(make_scheme("RT-3", config), traces, kernel="fast")
        for kernel_cls in (ReferenceKernel, FastKernel, BatchedKernel, VectorKernel):
            perturbed = simulate(
                make_scheme("RT-3", config),
                traces,
                kernel=kernel_cls(perturb_seed=99),
            )
            assert_stats_equal(baseline, perturbed, context=kernel_cls.name)

    def test_base_kernel_interface_is_abstract(self, traces_small):
        config, traces = traces_small
        with pytest.raises(NotImplementedError):
            SimulationKernel().run(make_scheme("S-NUCA", config), traces)


class TestAutoKernelSelection:
    """kernel="auto": probe run-length structure, pick fast vs batched."""

    @staticmethod
    def _trace_set(lengths, barriers=0):
        """Synthetic TraceSet: per-core READ streams, ``barriers`` evenly
        spaced barrier records on every core (TraceSet requires cores to
        agree on the barrier count)."""
        import numpy as np

        from repro.common.addr import Region
        from repro.common.types import LineClass
        from repro.workloads.trace import CoreTrace, TraceSet

        cores = []
        for length in lengths:
            types = np.zeros(length, dtype=np.uint8)  # READ
            if barriers and length:
                spacing = max(1, length // (barriers + 1))
                positions = [min(length - 1, (i + 1) * spacing)
                             for i in range(barriers)]
                types[positions] = int(AccessType.BARRIER)
                assert int((types == int(AccessType.BARRIER)).sum()) == barriers
            cores.append(CoreTrace(
                types=types,
                lines=np.arange(length, dtype=np.int64),
                gaps=np.zeros(length, dtype=np.uint16),
            ))
        region = Region(base=0, size=max(lengths) + 1)
        return TraceSet("synthetic", cores, [(region, LineClass.PRIVATE)])

    def test_imbalanced_run_heavy_picks_batched(self):
        from repro.sim.kernel import choose_kernel

        traces = self._trace_set([4000, 500, 500, 500])
        assert choose_kernel(traces) == "batched"

    def test_barrier_dense_picks_fast(self):
        from repro.sim.kernel import choose_kernel

        # Same imbalanced lengths, but ~8-record barrier segments on
        # the straggler: runs can't grow, so batching can't pay off.
        traces = self._trace_set([4000, 500, 500, 500], barriers=499)
        assert choose_kernel(traces) == "fast"

    def test_balanced_lockstep_picks_fast(self):
        from repro.sim.kernel import choose_kernel

        traces = self._trace_set([1000, 1000, 1000, 1000])
        assert choose_kernel(traces) == "fast"

    def test_empty_trace_falls_back_to_default(self):
        from repro.sim.kernel import choose_kernel

        traces = self._trace_set([0, 0, 0, 0])
        assert choose_kernel(traces) == DEFAULT_KERNEL

    def test_idle_cores_do_not_deflate_the_segment_probe(self):
        """Regression: empty traces used to contribute a phantom segment
        each, halving the measured mean segment length on half-idle
        workloads."""
        from repro.sim.kernel import choose_kernel

        # Two active cores (mean segment 65), two idle cores whose
        # phantom segments would read the mean as 32.5 < 64.
        traces = self._trace_set([100, 30, 0, 0])
        assert choose_kernel(traces) == "batched"

    def test_idle_cores_do_not_inflate_the_imbalance_probe(self):
        """Regression: zero-weight entries for idle cores deflated the
        mean load, making *lockstep* active cores look imbalanced."""
        from repro.sim.kernel import choose_kernel

        traces = self._trace_set([1000, 1000, 1000, 0])
        assert choose_kernel(traces) == "fast"

    def test_single_active_core_picks_batched(self):
        """A lone active core owns the scheduler — no imbalance needed."""
        from repro.sim.kernel import choose_kernel

        assert choose_kernel(self._trace_set([4000, 0, 0, 0])) == "batched"

    def test_replica_capable_engine_relaxes_the_segment_threshold(self):
        """Engines that batch local-replica hits (VR/ASR/locality) pick
        ``batched`` at shorter barrier segments than non-replicating
        engines — the replica-friendliness signal."""
        from repro.common.params import MachineConfig
        from repro.sim.kernel import (
            AUTO_MIN_SEGMENT_LENGTH,
            AUTO_MIN_SEGMENT_LENGTH_REPLICA,
            choose_kernel,
        )

        assert AUTO_MIN_SEGMENT_LENGTH_REPLICA < AUTO_MIN_SEGMENT_LENGTH
        config = MachineConfig.small()
        # Mean segment ~40: between the replica threshold (32) and the
        # plain threshold (64); imbalanced so only the segment probe
        # decides.
        traces = self._trace_set(
            [4000] + [500] * (config.num_cores - 1), barriers=17
        )
        assert choose_kernel(traces) == "fast"
        for scheme in ("RT-1", "RT-3"):
            engine = make_scheme(scheme, config)
            assert engine.supports_replica_batching()
            assert choose_kernel(traces, engine) == "batched", scheme
        # VR and ASR override the eviction hooks, so their replica hits
        # batch only while L1 sets have room — not a sustained win, and
        # not a reason to relax the threshold.
        for scheme in ("S-NUCA", "R-NUCA", "VR", "ASR"):
            engine = make_scheme(scheme, config)
            assert not engine.supports_replica_batching()
            assert choose_kernel(traces, engine) == "fast", scheme

    def test_observer_disables_the_replica_signal(self):
        from repro.common.params import MachineConfig
        from repro.schemes.base import ProtocolObserver

        config = MachineConfig.small()
        engine = make_scheme("RT-3", config, observer=ProtocolObserver())
        assert not engine.supports_replica_batching()

    def test_cluster_replication_disables_the_replica_signal(self):
        from repro.common.params import MachineConfig

        config = MachineConfig.small().with_overrides(cluster_size=4)
        assert not make_scheme("RT-3", config).supports_replica_batching()

    def test_resolve_kernel_rejects_auto_without_traces(self):
        from repro.sim.kernel import AUTO_KERNEL

        with pytest.raises(ValueError, match="auto"):
            resolve_kernel(AUTO_KERNEL)

    def test_simulate_auto_is_bit_identical(self, traces_small):
        config, traces = traces_small
        auto_stats = simulate(make_scheme("RT-3", config), traces, kernel="auto")
        ref_stats = simulate(
            make_scheme("RT-3", config), traces, kernel="reference"
        )
        assert_stats_equal(ref_stats, auto_stats, context="auto kernel")

    def test_segment_threshold_boundary_is_inclusive(self):
        """Mean segment exactly at the threshold picks batched; one
        record shorter picks fast (single active core, so only the
        segment probe decides)."""
        from repro.sim.kernel import AUTO_MIN_SEGMENT_LENGTH, choose_kernel

        assert AUTO_MIN_SEGMENT_LENGTH == 64.0
        assert choose_kernel(self._trace_set([64, 0, 0, 0])) == "batched"
        assert choose_kernel(self._trace_set([63, 0, 0, 0])) == "fast"

    def test_imbalance_threshold_boundary_is_inclusive(self):
        """Imbalance exactly at the threshold engages batching.  Gaps
        are zero, so the per-core weights are the record counts:
        330 / mean(330, 290, 290, 290) is exactly 1.10."""
        from repro.sim.kernel import AUTO_MIN_IMBALANCE, choose_kernel

        assert AUTO_MIN_IMBALANCE == 1.10
        assert choose_kernel(self._trace_set([330, 290, 290, 290])) == "batched"
        # 329/300 ~ 1.097 < 1.10: same total work, straggler too mild.
        assert choose_kernel(self._trace_set([329, 291, 290, 290])) == "fast"

    def test_vector_threshold_boundary_is_inclusive(self):
        """A batched pick upgrades to vector exactly at the span
        threshold — given an engine that vectorizes spans."""
        from repro.common.params import MachineConfig
        from repro.sim.kernel import AUTO_MIN_SEGMENT_LENGTH_VECTOR, choose_kernel

        assert AUTO_MIN_SEGMENT_LENGTH_VECTOR == 256.0
        config = MachineConfig.small()
        engine = make_scheme("Locality", config)
        idle = [0] * (config.num_cores - 1)
        assert choose_kernel(self._trace_set([256] + idle), engine) == "vector"
        assert choose_kernel(self._trace_set([255] + idle), engine) == "batched"

    def test_vector_needs_engine_span_support(self):
        """Long segments without a span-capable engine stay batched:
        no engine at all, and an engine whose access() override already
        disables batching (and with it vector spans)."""
        from repro.common.params import MachineConfig
        from repro.sim.kernel import choose_kernel

        config = MachineConfig.small()
        idle = [0] * (config.num_cores - 1)
        traces = self._trace_set([4000] + idle)
        assert choose_kernel(traces) == "batched"

        class LoggingSNuca(SNucaScheme):
            def access(self, core, atype, line_addr, now):
                return super().access(core, atype, line_addr, now)

        assert choose_kernel(traces, LoggingSNuca(config)) == "batched"
        assert choose_kernel(traces, make_scheme("S-NUCA", config)) == "vector"

    def test_vector_needs_integral_gaps(self):
        """Fractional gaps force per-record Compute accumulation — the
        vector closure would decline, so auto keeps batched."""
        import numpy as np

        from repro.common.addr import Region
        from repro.common.params import MachineConfig
        from repro.common.types import LineClass
        from repro.sim.kernel import choose_kernel
        from repro.workloads.trace import CoreTrace, TraceSet

        config = MachineConfig.small()
        cores = []
        for core in range(config.num_cores):
            n = 400 if core == 0 else 0
            cores.append(
                CoreTrace(
                    types=np.zeros(n, dtype=np.uint8),
                    lines=np.arange(n, dtype=np.int64),
                    gaps=np.full(n, 0.5),
                )
            )
        traces = TraceSet(
            "fractional", cores, [(Region(0, 4096), LineClass.PRIVATE)]
        )
        engine = make_scheme("Locality", config)
        assert choose_kernel(traces, engine) == "batched"

    def test_environment_selects_auto(self, traces_small, monkeypatch):
        config, traces = traces_small
        monkeypatch.setenv("REPRO_SIM_KERNEL", "auto")
        stats = simulate(make_scheme("S-NUCA", config), traces)
        assert stats.completion_time > 0
