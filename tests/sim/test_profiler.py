"""Figure 1 run-length profiler."""

import pytest

from repro.common.types import LineClass
from repro.sim.profiler import (
    RUN_LENGTH_BUCKETS,
    RunLengthProfile,
    bucket_label,
    profile_run_lengths,
)
from repro.workloads.benchmarks import build_trace, get_profile


class TestBucketLabel:
    def test_buckets(self):
        assert bucket_label(1) == "[1-2]"
        assert bucket_label(2) == "[1-2]"
        assert bucket_label(3) == "[3-9]"
        assert bucket_label(9) == "[3-9]"
        assert bucket_label(10) == "[>=10]"
        assert bucket_label(1000) == "[>=10]"

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            bucket_label(0)

    def test_bucket_table_matches_figure1(self):
        assert [label for label, _lo, _hi in RUN_LENGTH_BUCKETS] == [
            "[1-2]", "[3-9]", "[>=10]",
        ]


class TestProfiles:
    @pytest.fixture(scope="class")
    def barnes_profile(self, request):
        from repro.common.params import MachineConfig
        config = MachineConfig.small()
        traces = build_trace(get_profile("BARNES"), config, scale=0.3, seed=3)
        return profile_run_lengths(config, traces)

    def test_fractions_sum_to_one(self, barnes_profile):
        fractions = barnes_profile.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_barnes_dominated_by_shared_rw(self, barnes_profile):
        """Figure 1: BARNES LLC accesses are mostly shared read-write."""
        assert barnes_profile.class_fraction(LineClass.SHARED_RW) > 0.5

    def test_barnes_has_high_reuse(self, barnes_profile):
        """BARNES is the paper's flagship high-run-length benchmark."""
        assert barnes_profile.high_reuse_fraction() > 0.5

    def test_streaming_benchmark_has_low_reuse(self):
        from repro.common.params import MachineConfig
        config = MachineConfig.small()
        traces = build_trace(get_profile("OCEAN-C"), config, scale=0.3, seed=3)
        profile = profile_run_lengths(config, traces)
        assert profile.high_reuse_fraction() < 0.5

    def test_empty_profile(self):
        from collections import Counter
        profile = RunLengthProfile("EMPTY", Counter())
        assert profile.fractions() == {}
        assert profile.high_reuse_fraction() == 0.0
        assert profile.class_fraction(LineClass.PRIVATE) == 0.0
