"""The batched kernel's local-replica fast path.

The replica-dominated regime — L1 misses serviced by a local LLC replica
— is the paper's headline mechanism and used to be the one workload
shape the batched kernel could not help: every replica hit ended the run
and fell back to single-stepping.  These tests pin the extended
``make_batched_access``: bit-identity on replica-dominated workloads
across all replicating schemes (spanning classifier promotions and
demotions, writes through E/M replicas, dirty-victim merges and
instruction replicas), that the closure genuinely services replica hits
inline (no silent fallback), and the guard rails that disable the fast
path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.addr import Region
from repro.common.params import MachineConfig
from repro.common.types import AccessType, LineClass
from repro.schemes.base import ProtocolObserver
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.testing.differential import assert_stats_equal, verify_all_kernels
from repro.workloads.trace import CoreTrace, TraceSet

REPLICATING_SCHEMES = ("VR", "ASR", "RT-1", "RT-3", "RT-8")


def replica_sweep_traces(
    config: MachineConfig,
    ws_x_l1d: float = 2.0,
    straggler_accesses: int = 5000,
    other_accesses: int = 400,
    write_frac: float = 0.0,
    ifetch_frac: float = 0.0,
    seed: int = 3,
) -> TraceSet:
    """Shared-read sweep over a working set between the L1 and the LLC.

    Every core loops over the same region (making it shared, so R-NUCA
    placement distributes homes and replicas actually help); core 0 does
    the bulk of the work so it runs long same-core runs of replica/L1
    hits once the others drain.
    """
    ws = max(8, round(config.l1d.lines * ws_x_l1d))
    region = Region(0, ws + 8192)
    rng = np.random.default_rng(seed)
    cores = []
    for core in range(config.num_cores):
        n = straggler_accesses if core == 0 else other_accesses
        lines = ((np.arange(n) * (core + 1)) % ws).astype(np.int64)
        types = np.full(n, int(AccessType.READ), dtype=np.uint8)
        if write_frac:
            types[rng.random(n) < write_frac] = int(AccessType.WRITE)
        if ifetch_frac:
            types[rng.random(n) < ifetch_frac] = int(AccessType.IFETCH)
        cores.append(
            CoreTrace(types=types, lines=lines, gaps=np.zeros(n, dtype=np.uint16))
        )
    return TraceSet("replica-sweep", cores, [(region, LineClass.SHARED_RW)])


@pytest.fixture(scope="module")
def config() -> MachineConfig:
    return MachineConfig.small()


class TestReplicaRunBitIdentity:
    @pytest.mark.parametrize("scheme", REPLICATING_SCHEMES + ("S-NUCA", "R-NUCA"))
    def test_read_dominated_sweep(self, config, scheme):
        traces = replica_sweep_traces(config)
        stats = verify_all_kernels(
            lambda: make_scheme(scheme, config), traces, context=scheme
        )
        if scheme in REPLICATING_SCHEMES:
            assert stats.counters["llc_replica_hits"] > 0

    @pytest.mark.parametrize("scheme", REPLICATING_SCHEMES)
    def test_writes_and_ifetches_cross_every_boundary(self, config, scheme):
        """Writes hit E/M replicas (locality), upgrade through the home
        (ASR/S replicas), invalidate remote copies — and instruction
        records exercise the L1I replica fill."""
        traces = replica_sweep_traces(
            config, write_frac=0.08, ifetch_frac=0.08, seed=17
        )
        verify_all_kernels(
            lambda: make_scheme(scheme, config), traces, context=scheme
        )

    @pytest.mark.parametrize("scheme", ("RT-1", "RT-3"))
    def test_l1_overflow_forces_dirty_victim_merges(self, config, scheme):
        """With the working set over the L1 and writes in the mix, every
        replica-hit fill evicts a dirty-able victim that must merge into
        its own local replica — the inline-victim arm of the closure."""
        traces = replica_sweep_traces(
            config, ws_x_l1d=3.0, write_frac=0.2, seed=29
        )
        stats = verify_all_kernels(
            lambda: make_scheme(scheme, config), traces, context=scheme
        )
        assert stats.counters["l1_evictions"] > 0
        assert stats.counters["llc_replica_hits"] > 0

    @pytest.mark.parametrize("scheme", ("RT-3", "RT-8"))
    def test_promotions_and_demotions_stay_identical(self, config, scheme):
        """Classifier churn (promotions via reuse, demotions via write
        invalidations) spans batched runs; the reuse counters the
        closure increments feed the same decisions."""
        traces = replica_sweep_traces(config, write_frac=0.1, seed=41)
        stats = verify_all_kernels(
            lambda: make_scheme(scheme, config), traces, context=scheme
        )
        assert stats.counters["promotions"] > 0

    def test_sparse_classifier_organization(self, config):
        sparse = config.with_overrides(classifier_organization="sparse")
        traces = replica_sweep_traces(sparse, write_frac=0.05)
        verify_all_kernels(
            lambda: make_scheme("RT-3", sparse), traces, context="sparse"
        )

    def test_oracle_lookup(self, config):
        traces = replica_sweep_traces(config)
        verify_all_kernels(
            lambda: make_scheme("RT-3", config, oracle_lookup=True),
            traces,
            context="oracle",
        )


class TestReplicaRunsActuallyBatch:
    def test_locality_services_replica_hits_inline(self, config):
        """Meta-test: the closure must service a large share of the
        replica hits itself — a silent per-record fallback would pass
        every bit-identity test while losing the entire speedup."""
        traces = replica_sweep_traces(config)
        engine = make_scheme("RT-1", config)
        serviced = [0]
        service = engine._make_replica_service()

        def counting_service(core, line_addr, write):
            grant = service(core, line_addr, write)
            if grant is not None:
                serviced[0] += 1
            return grant

        engine._make_replica_service = lambda: counting_service
        stats = simulate(engine, traces, kernel="batched")
        total = stats.counters["llc_replica_hits"]
        assert total > 0
        assert serviced[0] >= total * 0.4, (
            f"only {serviced[0]} of {total} replica hits were serviced "
            "by the batched closure"
        )


class TestReplicaFastPathGuards:
    def test_base_machines_do_not_support_replica_batching(self, config):
        for scheme in ("S-NUCA", "R-NUCA"):
            engine = make_scheme(scheme, config)
            assert engine._make_replica_service() is None
            assert not engine.supports_replica_batching()

    @pytest.mark.parametrize("scheme", REPLICATING_SCHEMES)
    def test_replicating_schemes_provide_a_replica_service(self, config, scheme):
        assert make_scheme(scheme, config)._make_replica_service() is not None

    @pytest.mark.parametrize("scheme", ("RT-1", "RT-3", "RT-8"))
    def test_locality_schemes_signal_sustained_replica_batching(
        self, config, scheme
    ):
        assert make_scheme(scheme, config).supports_replica_batching()

    @pytest.mark.parametrize("scheme", ("VR", "ASR"))
    def test_victim_placing_schemes_do_not_signal_sustained_batching(
        self, config, scheme
    ):
        """VR/ASR override the eviction hooks: once the L1 is full their
        replica hits single-step, so they must not steer ``auto`` toward
        the batched kernel (their service still batches opportunistically
        while L1 sets have room)."""
        assert not make_scheme(scheme, config).supports_replica_batching()

    def test_observer_declines_and_still_counts_per_hit(self, config):
        """on_replica_access fires per hit in order; with an observer the
        fast path declines and the hook sees every hit."""

        class CountingObserver(ProtocolObserver):
            def __init__(self):
                self.replica_accesses = 0

            def on_replica_access(self, core, line_addr, is_write):
                self.replica_accesses += 1

        traces = replica_sweep_traces(config, straggler_accesses=1500)
        observer = CountingObserver()
        engine = make_scheme("RT-1", config, observer=observer)
        assert not engine.supports_replica_batching()
        stats = simulate(engine, traces, kernel="batched")
        assert observer.replica_accesses == stats.counters["llc_replica_hits"] > 0

    def test_fractional_llc_latency_declines_but_stays_exact(self, config):
        fractional = config.with_overrides(llc_tag_latency=1.5)
        engine = make_scheme("RT-3", fractional)
        assert not engine.supports_replica_batching()
        traces = replica_sweep_traces(fractional, straggler_accesses=1500)
        baseline = simulate(
            make_scheme("RT-3", fractional), traces, kernel="reference"
        )
        batched = simulate(engine, traces, kernel="batched")
        assert_stats_equal(baseline, batched, context="fractional llc latency")

    def test_local_lookup_override_declines(self, config):
        from repro.schemes.locality import LocalityAwareScheme

        class CustomLookup(LocalityAwareScheme):
            def local_lookup(self, core, line_addr, write, is_ifetch, now):
                return super().local_lookup(core, line_addr, write, is_ifetch, now)

        assert CustomLookup(config)._make_replica_service() is None
        assert not CustomLookup(config).supports_replica_batching()

    def test_replica_slice_override_declines(self, config):
        """The service closure hardcodes slices[core]; a subclass moving
        replicas elsewhere must not be silently bypassed."""
        from repro.schemes.locality import LocalityAwareScheme

        class ShiftedReplicas(LocalityAwareScheme):
            def replica_slice_for(self, core, line_addr):
                return (core + 1) % self.config.num_cores

        assert ShiftedReplicas(config)._make_replica_service() is None
        assert not ShiftedReplicas(config).supports_replica_batching()

    def test_cluster_replication_declines(self, config):
        clustered = config.with_overrides(cluster_size=4)
        assert make_scheme("RT-3", clustered)._make_replica_service() is None
        traces = replica_sweep_traces(clustered, straggler_accesses=1500)
        verify_all_kernels(
            lambda: make_scheme("RT-3", clustered), traces, context="cluster"
        )
