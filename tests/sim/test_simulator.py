"""Trace-driven simulation loop: ordering, barriers, completion."""

import numpy as np
import pytest

from repro.common.types import AccessType
from repro.schemes.snuca import SNucaScheme
from repro.sim import stats as stat_names
from repro.sim.simulator import simulate
from repro.workloads.trace import CoreTrace, TraceSet
from tests.helpers import records_trace_set


def _trace(records, name="test", regions=None):
    """Build a CoreTrace from (type, line, gap) tuples."""
    types = np.array([record[0] for record in records], dtype=np.uint8)
    lines = np.array([record[1] for record in records], dtype=np.int64)
    gaps = np.array([record[2] for record in records], dtype=np.uint16)
    return CoreTrace(types, lines, gaps)


def _trace_set(per_core, tiny_config, name="test"):
    return records_trace_set(per_core, name=name, region_lines=4096)


class TestBasicRuns:
    def test_single_access(self, tiny_config):
        traces = _trace_set(
            [[(AccessType.READ, 5, 0)], [], [], []], tiny_config
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.counters["offchip_misses"] == 1
        assert stats.completion_time > 0

    def test_core_count_mismatch_rejected(self, tiny_config):
        traces = _trace_set([[], []], tiny_config)
        with pytest.raises(ValueError, match="cores"):
            simulate(SNucaScheme(tiny_config), traces)

    def test_compute_gaps_accumulate(self, tiny_config):
        traces = _trace_set(
            [[(AccessType.READ, 5, 10), (AccessType.READ, 5, 20)], [], [], []],
            tiny_config,
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.latency_breakdown()["Compute"] == 30

    def test_completion_is_max_core_finish(self, tiny_config):
        traces = _trace_set(
            [
                [(AccessType.READ, 5, 0)],
                [(AccessType.READ, 9, 0), (AccessType.READ, 13, 0)],
                [],
                [],
            ],
            tiny_config,
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.completion_time == max(stats.core_finish)

    def test_all_access_types_processed(self, tiny_config):
        traces = _trace_set(
            [
                [
                    (AccessType.READ, 5, 0),
                    (AccessType.WRITE, 5, 0),
                    (AccessType.IFETCH, 9, 0),
                ],
                [], [], [],
            ],
            tiny_config,
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.counters["l1d_misses"] == 1
        assert stats.counters["l1i_misses"] == 1
        assert stats.counters["l1d_hits"] == 1  # the write upgrades in L1?


class TestBarriers:
    def test_barrier_synchronizes_cores(self, tiny_config):
        slow = [(AccessType.READ, 5 + 4 * index, 50) for index in range(8)]
        fast = [(AccessType.READ, 1001, 0)]
        barrier = (AccessType.BARRIER, 0, 0)
        tail = (AccessType.READ, 2001, 0)
        traces = _trace_set(
            [
                slow + [barrier, (AccessType.READ, 3001, 0)],
                fast + [barrier, tail],
                [barrier], [barrier],
            ],
            tiny_config,
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.latency_breakdown()["Synchronization"] > 0

    def test_mismatched_barrier_counts_rejected(self, tiny_config):
        with pytest.raises(ValueError, match="barrier"):
            _trace_set(
                [
                    [(AccessType.BARRIER, 0, 0)],
                    [], [], [],
                ],
                tiny_config,
            )

    def test_no_deadlock_with_barriers(self, tiny_config):
        barrier = (AccessType.BARRIER, 0, 0)
        per_core = [
            [(AccessType.READ, 4 * index + core, 0), barrier,
             (AccessType.READ, 100 + core, 0), barrier]
            for core, index in zip(range(4), range(4))
        ]
        stats = simulate(SNucaScheme(tiny_config), _trace_set(per_core, tiny_config))
        assert stats.completion_time > 0


class TestRegionCoverage:
    """simulate() must reject traces whose region map misses accessed lines."""

    @pytest.mark.parametrize("kernel", ["reference", "fast", "batched"])
    def test_uncovered_access_raises_clear_error(self, tiny_config, kernel):
        traces = _trace_set(
            [[(AccessType.READ, 5000, 0)], [], [], []], tiny_config
        )  # region map covers [0, 4096) only
        with pytest.raises(ValueError, match="region map"):
            simulate(SNucaScheme(tiny_config), traces, kernel=kernel)

    def test_error_names_core_and_line(self, tiny_config):
        traces = _trace_set(
            [[], [(AccessType.READ, 5, 0), (AccessType.WRITE, 0x2000, 0)], [], []],
            tiny_config,
        )
        with pytest.raises(ValueError, match="core 1 accesses line 0x2000"):
            simulate(SNucaScheme(tiny_config), traces)

    def test_empty_region_map_rejects_any_access(self, tiny_config):
        region_free = TraceSet(
            "bare", [_trace([(AccessType.READ, 5, 0)]), _trace([]), _trace([]),
                     _trace([])], []
        )
        with pytest.raises(ValueError, match="region map"):
            simulate(SNucaScheme(tiny_config), region_free)

    def test_barrier_records_are_exempt(self, tiny_config):
        barrier = (AccessType.BARRIER, 9999, 0)  # barrier line is ignored
        traces = _trace_set(
            [[barrier, (AccessType.READ, 5, 0)], [barrier], [barrier], [barrier]],
            tiny_config,
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.completion_time > 0

    def test_validation_is_cached_per_trace_set(self, tiny_config):
        # A pre-set cache flag must short-circuit the scan: an uncovered
        # trace marked as already-checked simulates without raising.
        traces = _trace_set([[(AccessType.READ, 5000, 0)], [], [], []], tiny_config)
        traces._coverage_checked = True
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.completion_time > 0


class TestWriteUpgrade:
    def test_write_after_read_same_core(self, tiny_config):
        """A write to an E-state L1 line upgrades silently (L1 hit)."""
        traces = _trace_set(
            [[(AccessType.READ, 5, 0), (AccessType.WRITE, 5, 0)], [], [], []],
            tiny_config,
        )
        stats = simulate(SNucaScheme(tiny_config), traces)
        assert stats.counters["l1d_misses"] == 1
        assert stats.counters["l1d_hits"] == 1
