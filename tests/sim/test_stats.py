"""SimStats: counters, breakdowns and derived metrics."""

import pytest

from repro.common.types import MissStatus
from repro.energy.model import EnergyModel, EnergyParams
from repro.sim import stats as stat_names
from repro.sim.stats import LATENCY_BUCKETS, SimStats, merge_counters


@pytest.fixture
def stats():
    return SimStats(num_cores=4)


class TestMissBreakdown:
    def test_l1_hits_not_counted_as_misses(self, stats):
        stats.record_miss(MissStatus.L1_HIT)
        assert stats.l1_misses() == 0

    def test_breakdown_fractions(self, stats):
        for _ in range(6):
            stats.record_miss(MissStatus.LLC_REPLICA_HIT)
        for _ in range(3):
            stats.record_miss(MissStatus.LLC_HOME_HIT)
        stats.record_miss(MissStatus.OFF_CHIP_MISS)
        breakdown = stats.miss_breakdown()
        assert breakdown["LLC-Replica-Hits"] == pytest.approx(0.6)
        assert breakdown["LLC-Home-Hits"] == pytest.approx(0.3)
        assert breakdown["OffChip-Misses"] == pytest.approx(0.1)

    def test_fractions_sum_to_one(self, stats):
        for status in (MissStatus.LLC_REPLICA_HIT, MissStatus.LLC_HOME_HIT,
                       MissStatus.OFF_CHIP_MISS):
            stats.record_miss(status)
        assert sum(stats.miss_breakdown().values()) == pytest.approx(1.0)

    def test_empty_breakdown(self, stats):
        assert sum(stats.miss_breakdown().values()) == 0.0

    def test_offchip_miss_rate(self, stats):
        stats.record_miss(MissStatus.LLC_HOME_HIT)
        stats.record_miss(MissStatus.OFF_CHIP_MISS)
        assert stats.offchip_miss_rate() == pytest.approx(0.5)


class TestLatencyBuckets:
    def test_bucket_names_match_figure7(self):
        assert LATENCY_BUCKETS == (
            "Compute", "L1-Hit", "L1-To-LLC-Replica", "L1-To-LLC-Home",
            "LLC-Home-Waiting", "LLC-Home-To-Sharers", "LLC-Home-To-OffChip",
            "Synchronization",
        )

    def test_accumulation(self, stats):
        stats.add_latency(stat_names.COMPUTE, 10)
        stats.add_latency(stat_names.COMPUTE, 5)
        assert stats.latency_breakdown()["Compute"] == 15

    def test_all_buckets_present(self, stats):
        breakdown = stats.latency_breakdown()
        assert set(breakdown) == set(LATENCY_BUCKETS)


class TestEnergy:
    def test_energy_uses_supplied_model(self, stats):
        stats.energy_event("dram_read", 10)
        cheap = EnergyModel(EnergyParams(dram_access_pj=1.0))
        costly = EnergyModel(EnergyParams(dram_access_pj=100.0))
        assert stats.total_energy(costly) > stats.total_energy(cheap)

    def test_energy_delay_product(self, stats):
        stats.energy_event("dram_read", 1)
        stats.completion_time = 100.0
        assert stats.energy_delay_product() == pytest.approx(
            stats.total_energy() * 100.0
        )


class TestSummary:
    def test_summary_keys(self, stats):
        summary = stats.summary()
        assert set(summary) == {
            "completion_time", "energy_pj", "l1_misses",
            "replica_hit_fraction", "offchip_miss_rate",
        }


class TestMergeCounters:
    def test_merge(self):
        merged = merge_counters({"a": 1, "b": 2}, {"b": 3, "c": 4})
        assert merged == {"a": 1, "b": 5, "c": 4}


class TestSerialization:
    def test_to_dict_is_json_serializable(self, stats):
        import json
        stats.record_miss(MissStatus.LLC_HOME_HIT)
        stats.energy_event("dram_read", 2)
        stats.add_latency(stat_names.COMPUTE, 12)
        stats.completion_time = 42.0
        dump = stats.to_dict()
        text = json.dumps(dump)
        assert "LLC_HOME_HIT" in text

    def test_to_dict_contents(self, stats):
        stats.record_miss(MissStatus.OFF_CHIP_MISS)
        stats.completion_time = 10.0
        dump = stats.to_dict()
        assert dump["completion_time"] == 10.0
        assert dump["miss_status"]["OFF_CHIP_MISS"] == 1
        assert set(dump["latency_breakdown"]) == set(LATENCY_BUCKETS)
        assert dump["summary"]["completion_time"] == 10.0
