"""Timing model vs closed-form predictions (exact, contention-free)."""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import AccessType, MissStatus
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.snuca import SNucaScheme
from repro.sim import validation
from tests.helpers import drive, read


@pytest.fixture
def config():
    return MachineConfig.tiny()


class TestL1Hit:
    def test_exact(self, config):
        engine = SNucaScheme(config)
        drive(engine, [read(0, 5)])
        result = engine.access(0, AccessType.READ, 5, 1000.0)
        assert result.latency == validation.l1_hit_latency(config)


class TestHomeHits:
    def test_local_home_hit_exact(self, config):
        engine = SNucaScheme(config)
        # Line 4 homes at core 0; two priming readers leave it in clean S
        # with no exclusive owner to downgrade.
        drive(engine, [read(1, 4), read(2, 4)])
        result = engine.access(0, AccessType.READ, 4, 10000.0)
        assert result.status == MissStatus.LLC_HOME_HIT
        assert result.latency == validation.local_home_hit_latency(config)

    def test_remote_home_hit_exact(self, config):
        engine = SNucaScheme(config)
        drive(engine, [read(1, 7), read(2, 7)])   # line 7 homes at core 3
        result = engine.access(0, AccessType.READ, 7, 10000.0)
        assert result.status == MissStatus.LLC_HOME_HIT
        expected = validation.remote_home_hit_latency(config, requester=0, home=3)
        assert result.latency == expected

    def test_remote_home_hit_with_probe(self, config):
        """The locality scheme pays a failed local tag probe first."""
        tuned = config.with_overrides(replication_threshold=3)
        engine = LocalityAwareScheme(tuned)
        # First touch makes the page private at core 2; the second reader
        # triggers the shared migration (and becomes exclusive owner at
        # the new home), and the third settles the line into clean S.
        drive(engine, [read(2, 103), read(1, 103), read(2, 103)])
        result = engine.access(0, AccessType.READ, 103, 10000.0)
        assert result.status == MissStatus.LLC_HOME_HIT
        expected = validation.remote_home_hit_latency(
            tuned, requester=0, home=3, probe=True
        )
        assert result.latency == expected


class TestReplicaHit:
    def test_replica_hit_exact(self, config):
        tuned = config.with_overrides(replication_threshold=1)
        engine = LocalityAwareScheme(tuned)
        drive(engine, [read(2, 101), read(3, 101)])
        drive(engine, [read(0, 101)], start_time=1000.0)  # replica created
        # Force the L1 copy out without touching the replica.
        engine.l1d[0].invalidate(101)
        result = engine.access(0, AccessType.READ, 101, 50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT
        assert result.latency == validation.replica_hit_latency(tuned)


class TestOffchipMiss:
    def test_offchip_exact(self, config):
        engine = SNucaScheme(config)
        result = engine.access(0, AccessType.READ, 7, 0.0)  # cold, home 3
        assert result.status == MissStatus.OFF_CHIP_MISS
        controller = engine.dram.controller_for(7)
        expected = validation.offchip_miss_latency(
            config, requester=0, home=3, controller_tile=controller.core_id
        )
        assert result.latency == expected

    def test_offchip_dominates_home_hit(self, config):
        controller_tile = 0
        assert validation.offchip_miss_latency(
            config, 0, 3, controller_tile
        ) > validation.remote_home_hit_latency(config, 0, 3)


class TestMessageLatency:
    def test_zero_hops_free(self, config):
        assert validation.message_latency(config, 0, 9) == 0.0

    def test_matches_mesh_unloaded(self, config):
        from repro.network.mesh import Mesh
        mesh = Mesh(config)
        for src in range(config.num_cores):
            for dst in range(config.num_cores):
                hops = mesh.topology.hops(src, dst)
                for flits in (1, 9):
                    if src == dst:
                        continue
                    assert validation.message_latency(config, hops, flits) == \
                        mesh.unloaded_latency(src, dst, flits)
