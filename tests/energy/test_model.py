"""Energy model: per-event accounting and the paper's stated relations."""

import pytest

from repro.energy import model as events
from repro.energy.model import COMPONENTS, EnergyModel, EnergyParams


class TestRelations:
    def test_llc_write_is_1_2x_read(self):
        """Section 4.1: 'a write expends 1.2x more energy than a read'."""
        params = EnergyParams()
        assert params.llc_data_write_pj == pytest.approx(1.2 * params.llc_data_read_pj)

    def test_dram_dominates_llc(self):
        params = EnergyParams()
        assert params.dram_access_pj > 10 * params.llc_data_read_pj

    def test_directory_scale(self):
        scaled = EnergyParams().scaled_directory(1.2)
        assert scaled.directory_scale == 1.2
        assert EnergyParams().directory_scale == 1.0


class TestBreakdown:
    def test_components_match_figure6(self):
        assert COMPONENTS == (
            "L1-I Cache", "L1-D Cache", "L2 Cache (LLC)", "Directory",
            "Network Router", "Network Link", "DRAM",
        )

    def test_empty_counts_zero_energy(self):
        model = EnergyModel()
        breakdown = model.breakdown({})
        assert all(value == 0.0 for value in breakdown.values())
        assert model.total({}) == 0.0

    def test_single_component_attribution(self):
        model = EnergyModel()
        breakdown = model.breakdown({events.DRAM_READ: 10})
        assert breakdown["DRAM"] == pytest.approx(10 * model.params.dram_access_pj)
        assert sum(v for k, v in breakdown.items() if k != "DRAM") == 0.0

    def test_llc_component_sums_tag_and_data(self):
        model = EnergyModel()
        counts = {
            events.LLC_TAG_READ: 2,
            events.LLC_DATA_READ: 3,
            events.LLC_DATA_WRITE: 1,
        }
        expected = (
            2 * model.params.llc_tag_read_pj
            + 3 * model.params.llc_data_read_pj
            + 1 * model.params.llc_data_write_pj
        )
        assert model.breakdown(counts)["L2 Cache (LLC)"] == pytest.approx(expected)

    def test_directory_scaling_applies(self):
        counts = {events.DIR_READ: 10, events.DIR_WRITE: 10}
        plain = EnergyModel().breakdown(counts)["Directory"]
        scaled = EnergyModel(EnergyParams().scaled_directory(1.2)).breakdown(counts)["Directory"]
        assert scaled == pytest.approx(1.2 * plain)

    def test_network_split(self):
        model = EnergyModel()
        counts = {events.ROUTER_FLIT: 5, events.LINK_FLIT: 7}
        breakdown = model.breakdown(counts)
        assert breakdown["Network Router"] == pytest.approx(5 * model.params.router_flit_pj)
        assert breakdown["Network Link"] == pytest.approx(7 * model.params.link_flit_pj)

    def test_total_is_sum_of_components(self):
        model = EnergyModel()
        counts = {
            events.L1D_READ: 100, events.L1I_READ: 50, events.DRAM_WRITE: 3,
            events.LLC_TAG_READ: 40, events.DIR_WRITE: 12, events.LINK_FLIT: 9,
        }
        assert model.total(counts) == pytest.approx(sum(model.breakdown(counts).values()))
