"""Golden-snapshot regression tests for the paper's headline numbers.

The checked-in JSON goldens pin the headline summary (abstract
reductions) and the Figure 6–8 comparison matrix on a deterministic
reduced configuration.  Any refactor that shifts a simulated number now
fails loudly; intentional changes are regenerated with ``--regold`` (or
``REPRO_REGOLD=1``) and reviewed as a JSON diff.
"""

from __future__ import annotations

import pytest

from repro.common.params import MachineConfig
from repro.experiments import comparison, summary
from repro.experiments.runner import ExperimentSetup
from repro.testing.golden import (
    GoldenMismatch,
    GoldenStore,
    payload_diff,
    round_floats,
)

#: Deterministic reduced matrix: tiny machine, three representative
#: benchmarks, fixed seed.  Small enough for every CI run.
GOLDEN_BENCHMARKS = ("BARNES", "OCEAN-C", "DEDUP")
GOLDEN_SCALE = 0.25
GOLDEN_SEED = 1


@pytest.fixture(scope="module")
def matrix():
    setup = ExperimentSetup(
        MachineConfig.tiny(), scale=GOLDEN_SCALE, seed=GOLDEN_SEED
    )
    return comparison.run_comparison(setup, benchmarks=list(GOLDEN_BENCHMARKS))


class TestPaperGoldens:
    def test_headline_summary_golden(self, golden_store, matrix):
        energy_reduction, time_reduction = summary.headline_reductions(matrix)
        golden_store.check(
            "headline_summary",
            round_floats(
                {
                    "energy_reduction_vs": energy_reduction,
                    "time_reduction_vs": time_reduction,
                }
            ),
        )

    def test_fig6_fig7_fig8_matrix_golden(self, golden_store, matrix):
        asr_levels = {
            benchmark: row["ASR"].asr_level for benchmark, row in matrix.items()
        }
        golden_store.check(
            "fig6_fig7_fig8_matrix",
            round_floats(
                {
                    "fig6_energy": comparison.fig6_energy(matrix),
                    "fig7_completion": comparison.fig7_completion(matrix),
                    "fig8_miss_breakdown": comparison.fig8_miss_breakdown(matrix),
                    "asr_levels": asr_levels,
                }
            ),
        )


class TestGoldenStore:
    def test_save_then_check_round_trips(self, tmp_path):
        store = GoldenStore(tmp_path, regenerate=False)
        store.save("numbers", {"a": 1.5, "b": [1, 2, (3, 4)]})
        store.check("numbers", {"a": 1.5, "b": [1, 2, [3, 4]]})

    def test_mismatch_reports_value_path(self, tmp_path):
        store = GoldenStore(tmp_path, regenerate=False)
        store.save("numbers", {"outer": {"inner": 1.0}})
        with pytest.raises(GoldenMismatch, match=r"\$\.outer\.inner"):
            store.check("numbers", {"outer": {"inner": 2.0}})

    def test_missing_golden_instructs_regeneration(self, tmp_path):
        store = GoldenStore(tmp_path, regenerate=False)
        with pytest.raises(GoldenMismatch, match="REPRO_REGOLD"):
            store.check("absent", {"a": 1})

    def test_regenerate_writes_and_passes(self, tmp_path):
        store = GoldenStore(tmp_path, regenerate=True)
        store.check("fresh", {"a": 1})
        assert store.exists("fresh")
        strict = GoldenStore(tmp_path, regenerate=False)
        strict.check("fresh", {"a": 1})

    def test_extra_and_missing_keys_reported(self, tmp_path):
        store = GoldenStore(tmp_path, regenerate=False)
        store.save("keys", {"kept": 1, "dropped": 2})
        with pytest.raises(GoldenMismatch) as excinfo:
            store.check("keys", {"kept": 1, "added": 3})
        message = str(excinfo.value)
        assert "dropped" in message and "added" in message


class TestPayloadDiff:
    def test_type_mismatch(self):
        assert payload_diff({"a": 1}, {"a": "1"}) == ["$.a: type int != str"]

    def test_list_length_mismatch(self):
        diffs = payload_diff([1, 2], [1])
        assert diffs == ["$: length 2 != 1"]

    def test_equal_payloads_produce_no_diff(self):
        assert payload_diff({"a": [1, 2.0, "x"]}, {"a": [1, 2.0, "x"]}) == []
