"""Fixtures for the verification-subsystem tests."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.testing.golden import GoldenStore, regenerate_requested

GOLDEN_DIR = Path(__file__).parent / "goldens"


@pytest.fixture
def golden_store(request: pytest.FixtureRequest) -> GoldenStore:
    """The checked-in golden directory; ``--regold`` or ``REPRO_REGOLD=1``
    switches it into regeneration mode."""
    regenerate = request.config.getoption("--regold") or regenerate_requested()
    return GoldenStore(GOLDEN_DIR, regenerate=regenerate)
