"""Metamorphic checks: invariances the event loop must respect."""

from __future__ import annotations

import pytest

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.testing.metamorphic import (
    check_barrier_count_invariance,
    check_equal_time_permutation,
    check_scale_monotonicity,
    with_prepended_barriers,
)
from repro.workloads.benchmarks import build_trace, get_profile


@pytest.fixture(scope="module")
def config() -> MachineConfig:
    return MachineConfig.tiny()


@pytest.fixture(scope="module")
def traces(config):
    # BARNES carries barriers by default, so barrier release paths run.
    return build_trace(get_profile("BARNES"), config, scale=0.1, seed=5)


class TestEqualTimePermutation:
    @pytest.mark.parametrize("kernel", ["reference", "fast", "batched"])
    @pytest.mark.parametrize("scheme", ["S-NUCA", "RT-3"])
    def test_shuffled_equal_time_events_are_invisible(
        self, config, traces, scheme, kernel
    ):
        stats = check_equal_time_permutation(
            lambda: make_scheme(scheme, config), traces, kernel=kernel
        )
        assert stats.completion_time > 0


class TestBarrierCountInvariance:
    @pytest.mark.parametrize("scheme", ["S-NUCA", "VR", "RT-3"])
    def test_prepended_barriers_are_free(self, config, traces, scheme):
        stats = check_barrier_count_invariance(
            lambda: make_scheme(scheme, config), traces, counts=(1, 4)
        )
        assert stats.completion_time > 0

    def test_with_prepended_barriers_shape(self, traces):
        padded = with_prepended_barriers(traces, 2)
        for original, new in zip(traces.cores, padded.cores):
            assert len(new) == len(original) + 2
            assert new.barrier_count() == original.barrier_count() + 2

    def test_negative_count_rejected(self, traces):
        with pytest.raises(ValueError, match="non-negative"):
            with_prepended_barriers(traces, -1)


class TestScaleMonotonicity:
    @pytest.mark.parametrize("scheme", ["S-NUCA", "RT-3"])
    def test_longer_workloads_take_longer(self, config, scheme):
        profile = get_profile("WATER-NSQ")
        results = check_scale_monotonicity(
            lambda: make_scheme(scheme, config),
            lambda scale: build_trace(profile, config, scale=scale, seed=9),
            scales=(0.05, 0.1, 0.2),
        )
        assert len(results) == 3
        completions = [stats.completion_time for _scale, stats in results]
        assert completions == sorted(completions)

    def test_unsorted_scales_rejected(self, config):
        with pytest.raises(ValueError, match="increasing"):
            check_scale_monotonicity(
                lambda: make_scheme("S-NUCA", config),
                lambda scale: None,
                scales=(0.2, 0.1),
            )
