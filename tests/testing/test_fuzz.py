"""Unit tests for the randomized-profile differential fuzzer and its CLI."""

from __future__ import annotations

import json
import random

import pytest

from repro.common.params import MachineConfig
from repro.testing import fuzz
from repro.testing.differential import DifferentialMismatch


class TestCaseDerivation:
    def test_cases_are_deterministic_in_the_seed(self):
        assert fuzz.make_case(7) == fuzz.make_case(7)
        assert fuzz.make_case(7) != fuzz.make_case(8)

    def test_iter_cases_spans_distinct_seeds(self):
        cases = list(fuzz.iter_cases(5, seed=100))
        assert [case.case_seed for case in cases] == [100, 101, 102, 103, 104]
        assert len({case.profile.name for case in cases}) == 5

    def test_random_profiles_are_always_valid(self):
        """BenchmarkProfile validates mixes/patterns in __post_init__, so
        construction succeeding is the assertion."""
        for seed in range(200):
            profile = fuzz.random_profile(random.Random(seed), name=f"P{seed}")
            total = (
                profile.f_ifetch + profile.f_private + profile.f_shared_ro
                + profile.f_shared_rw + profile.f_migratory
            )
            assert 0.99 <= total <= 1.01

    def test_bundle_round_trip(self):
        case = fuzz.make_case(42)
        restored = fuzz.FuzzCase.from_bundle(
            json.loads(json.dumps(case.to_bundle()))
        )
        assert restored == case

    def test_bundle_records_the_machine(self):
        """A failure found under --machine small must replay on the same
        machine: the bundle carries it, and legacy bundles default to
        tiny."""
        case = fuzz.make_case(13, machine="small")
        bundle = case.to_bundle()
        assert bundle["machine"] == "small"
        restored = fuzz.FuzzCase.from_bundle(bundle)
        assert restored.machine == "small"
        assert restored.config().num_cores == MachineConfig.small().num_cores
        legacy = {key: value for key, value in bundle.items() if key != "machine"}
        assert fuzz.FuzzCase.from_bundle(legacy).machine == "tiny"

    def test_fractional_cases_flip_gap_integrality(self):
        """Every flagged case must actually exercise the per-record
        Compute path: the half-cycle offset makes *all* cores'
        gaps fractional regardless of the profile's mean_gap (including
        mean_gap=0, where halving would have left them integral)."""
        fractional_cases = [
            case for case in fuzz.iter_cases(40, seed=0) if case.fractional_gaps
        ]
        assert fractional_cases
        for case in fractional_cases[:3]:
            traces = fuzz.build_case_traces(case, MachineConfig.tiny())
            assert all(
                not decoded.gaps_integral for decoded in traces.decoded()
            )


class TestRunFuzz:
    def test_small_session_passes_and_reports(self):
        report = fuzz.run_fuzz(3, seed=11)
        assert report.ok
        assert len(report.passed) == 3
        assert "3 passed, 0 failed" in report.summary()

    def test_failure_writes_repro_bundle(self, tmp_path, monkeypatch):
        case = fuzz.make_case(5)

        def always_diverges(*args, **kwargs):
            raise DifferentialMismatch([], context="injected")

        monkeypatch.setattr(fuzz, "run_case", always_diverges)
        report = fuzz.run_fuzz(1, seed=5, out_dir=tmp_path)
        assert not report.ok
        bundle_path = tmp_path / f"case-{case.case_seed}.json"
        assert bundle_path.is_file()
        bundle = json.loads(bundle_path.read_text())
        assert bundle["case_seed"] == 5
        assert "error" in bundle
        assert fuzz.FuzzCase.from_bundle(bundle) == case


class TestCsvRoundtripFuzz:
    def test_randomized_trace_sets_survive_csv_exactly(self, tmp_path):
        failures = fuzz.run_csv_roundtrip_fuzz(4, seed=21, workdir=tmp_path)
        assert failures == []
        # Passing cases clean up their intermediate captures: only
        # diverging ones may remain for artifact upload.
        assert list(tmp_path.glob("case-*.csv.gz")) == []
        assert list(tmp_path.glob("case-*.error")) == []

    def test_divergence_is_reported_and_leaves_a_note(self, tmp_path,
                                                      monkeypatch):
        def always_diverges(case, workdir):
            raise AssertionError("injected divergence")

        monkeypatch.setattr(fuzz, "csv_roundtrip_case", always_diverges)
        failures = fuzz.run_csv_roundtrip_fuzz(2, seed=3, workdir=tmp_path)
        assert len(failures) == 2
        assert "injected divergence" in failures[0]
        notes = sorted(tmp_path.glob("case-*.error"))
        assert len(notes) == 2
        assert "injected divergence" in notes[0].read_text()

    def test_cli_subcommand(self, tmp_path, capsys):
        from repro.testing.__main__ import main

        assert main([
            "csv-roundtrip", "--cases", "2", "--seed", "6",
            "--workdir", str(tmp_path / "work"),
        ]) == 0
        assert "2 exact, 0 diverged" in capsys.readouterr().out


class TestCli:
    def test_fuzz_cli_exits_zero_on_success(self, capsys):
        from repro.testing.__main__ import main

        assert main(["verify-kernels", "--fuzz", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "2 passed, 0 failed" in out

    def test_repro_cli_replays_bundle(self, tmp_path, capsys):
        from repro.testing.__main__ import main

        case = fuzz.make_case(9)
        bundle = case.to_bundle()
        bundle_path = tmp_path / "case-9.json"
        bundle_path.write_text(json.dumps(bundle))
        assert main(["verify-kernels", "--repro", str(bundle_path)]) == 0
        assert "no longer diverges" in capsys.readouterr().out

    def test_kernel_filter_is_honored(self):
        from repro.testing.__main__ import main

        assert main(
            ["verify-kernels", "--fuzz", "1", "--seed", "4", "--kernels", "batched"]
        ) == 0

    def test_unknown_subcommand_rejected(self):
        from repro.testing.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["bogus"])
