"""Golden-snapshot coverage for the fig9/fig10/rt-sweep matrices.

The headline summary and Figure 6–8 matrix have been pinned since the
kernel refactors began; these goldens extend the same ``GoldenStore`` +
``--regold`` flow to the remaining experiment matrices (classifier-k
sensitivity, cluster-size sensitivity, replication-threshold sweep) on a
deterministic reduced configuration, so a refactor that shifts any of
their simulated numbers fails tier-1 loudly.  Intentional changes are
regenerated with ``REPRO_REGOLD=1`` (or ``pytest --regold``) and
reviewed as JSON diffs.
"""

from __future__ import annotations

import pytest

from repro.common.params import MachineConfig
from repro.experiments import fig9_limitedk, fig10_cluster, rt_sweep
from repro.experiments.runner import ExperimentSetup
from repro.testing.golden import round_floats

#: Two benchmarks spanning the sensitive/insensitive extremes of the
#: swept parameters, at a scale every CI run affords.
MATRIX_BENCHMARKS = ("BARNES", "DEDUP")
MATRIX_SCALE = 0.25
MATRIX_SEED = 1


@pytest.fixture(scope="module")
def setup() -> ExperimentSetup:
    return ExperimentSetup(
        MachineConfig.tiny(), scale=MATRIX_SCALE, seed=MATRIX_SEED
    )


class TestMatrixGoldens:
    def test_fig9_limitedk_golden(self, golden_store, setup):
        results = fig9_limitedk.run_fig9(setup, benchmarks=list(MATRIX_BENCHMARKS))
        energy, completion = fig9_limitedk.normalized_tables(
            results, setup.config.num_cores
        )
        golden_store.check(
            "fig9_limitedk_matrix",
            round_floats({"energy": energy, "completion": completion}),
        )

    def test_fig10_cluster_golden(self, golden_store, setup):
        results = fig10_cluster.run_fig10(setup, benchmarks=list(MATRIX_BENCHMARKS))
        energy, completion = fig10_cluster.normalized_tables(results)
        golden_store.check(
            "fig10_cluster_matrix",
            round_floats({"energy": energy, "completion": completion}),
        )

    def test_rt_sweep_golden(self, golden_store, setup):
        results = rt_sweep.run_rt_sweep(setup, benchmarks=list(MATRIX_BENCHMARKS))
        payload = {
            "energy": {
                benchmark: {
                    f"RT-{rt}": row[rt].total_energy / row[rt_sweep.RT_VALUES[0]].total_energy
                    for rt in rt_sweep.RT_VALUES
                }
                for benchmark, row in results.items()
            },
            "completion": {
                benchmark: {
                    f"RT-{rt}": row[rt].completion_time
                    / row[rt_sweep.RT_VALUES[0]].completion_time
                    for rt in rt_sweep.RT_VALUES
                }
                for benchmark, row in results.items()
            },
            "best_rt_by_edp": rt_sweep.best_rt_by_edp(results),
        }
        golden_store.check("rt_sweep_matrix", round_floats(payload))
