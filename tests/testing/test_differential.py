"""Differential suite: the fast kernel is bit-identical to the reference.

Every headline number flows through the simulator, so the optimized
kernel is only trustworthy if it reproduces the reference loop's
``SimStats`` exactly — all five schemes, across workload regimes (LLC
reuse, capacity pressure, migratory sharing) and seeds.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.common.params import MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.stats import SimStats
from repro.testing.differential import (
    DifferentialMismatch,
    StatsDiff,
    assert_stats_equal,
    diff_kernels,
    stats_diff,
    summarize,
    verify_kernels,
    verify_matrix,
)
from repro.workloads.benchmarks import build_trace, get_profile

#: The five evaluated schemes (ASR at its default replication level).
SCHEMES = ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3")

#: Three seeded workload profiles spanning distinct behaviour classes:
#: shared-RW reuse, partitioned capacity pressure, migratory data.
WORKLOADS = (
    ("BARNES", 0.10, 11),
    ("OCEAN-C", 0.10, 23),
    ("DEDUP", 0.10, 37),
)


@pytest.fixture(scope="module")
def config() -> MachineConfig:
    return MachineConfig.tiny()


@pytest.fixture(scope="module")
def trace_sets(config):
    return {
        name: build_trace(get_profile(name), config, scale=scale, seed=seed)
        for name, scale, seed in WORKLOADS
    }


class TestKernelEquivalence:
    @pytest.mark.parametrize("workload", [name for name, _s, _e in WORKLOADS])
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_identical_stats(self, config, trace_sets, scheme, workload):
        stats = verify_kernels(
            lambda: make_scheme(scheme, config),
            trace_sets[workload],
            context=f"{scheme} on {workload}",
        )
        # Sanity: the workload actually exercised the machine.
        assert stats.completion_time > 0
        assert stats.l1_misses() > 0

    def test_verify_matrix_runs_all_combinations(self, config, trace_sets):
        builders = {scheme: (lambda s=scheme: make_scheme(s, config))
                    for scheme in ("S-NUCA", "RT-3")}
        results = verify_matrix(builders, trace_sets)
        assert len(results) == 2 * len(trace_sets)
        report = summarize(sorted(results.items()))
        for scheme in builders:
            assert scheme in report


class TestStatsDiff:
    def _stats(self) -> SimStats:
        stats = SimStats(2)
        stats.counters = Counter({"l1d_hits": 3})
        stats.latency = Counter({"Compute": 10.0})
        stats.core_finish = [5.0, 7.0]
        stats.completion_time = 7.0
        return stats

    def test_identical_stats_have_empty_diff(self):
        assert stats_diff(self._stats(), self._stats()) == []
        assert_stats_equal(self._stats(), self._stats())

    def test_counter_divergence_reported(self):
        reference, candidate = self._stats(), self._stats()
        candidate.counters["l1d_hits"] += 1
        candidate.latency["Compute"] = 11.0
        diffs = stats_diff(reference, candidate)
        assert {(diff.section, diff.key) for diff in diffs} == {
            ("counters", "l1d_hits"),
            ("latency", "Compute"),
        }

    def test_missing_key_counts_as_divergence(self):
        reference, candidate = self._stats(), self._stats()
        candidate.counters["invalidations_sent"] = 2
        diffs = stats_diff(reference, candidate)
        assert [diff.key for diff in diffs] == ["invalidations_sent"]
        assert diffs[0].reference == 0

    def test_core_finish_and_completion_divergence(self):
        reference, candidate = self._stats(), self._stats()
        candidate.core_finish[1] = 9.0
        candidate.completion_time = 9.0
        sections = {diff.section for diff in stats_diff(reference, candidate)}
        assert sections == {"core_finish", "completion_time"}

    def test_mismatch_raises_with_readable_report(self):
        reference, candidate = self._stats(), self._stats()
        candidate.counters["l1d_hits"] = 99
        with pytest.raises(DifferentialMismatch, match=r"counters\[l1d_hits\]"):
            assert_stats_equal(reference, candidate, context="unit")

    def test_statsdiff_str(self):
        diff = StatsDiff("counters", "x", 1, 2)
        assert "counters[x]" in str(diff)


class TestDiffKernels:
    def test_returns_both_stats_and_empty_diff(self, config, trace_sets):
        reference, candidate, diffs = diff_kernels(
            lambda: make_scheme("VR", config), trace_sets["BARNES"]
        )
        assert diffs == []
        assert reference.completion_time == candidate.completion_time
