"""Differential suite: optimized kernels are bit-identical to reference.

Every headline number flows through the simulator, so the optimized
kernels (fast, batched) are only trustworthy if they reproduce the
reference loop's ``SimStats`` exactly — all five schemes, across
workload regimes (LLC reuse, capacity pressure, migratory sharing) and
seeds.  The suite also covers the failure path: a mismatch report must
localize the *first* cycle-stamped divergent stat field via trace-prefix
bisection, not just dump the whole-SimStats inequality.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
import pytest

from repro.common.params import MachineConfig
from repro.common.types import AccessType
from repro.schemes.factory import make_scheme
from repro.sim.kernel import ReferenceKernel
from repro.sim.stats import SimStats
from repro.testing.differential import (
    DifferentialMismatch,
    FirstDivergence,
    StatsDiff,
    assert_stats_equal,
    diff_kernels,
    locate_first_divergence,
    stats_diff,
    summarize,
    truncated_traces,
    verify_all_kernels,
    verify_kernels,
    verify_matrix,
)
from repro.workloads.benchmarks import BenchmarkProfile, build_trace, get_profile

#: The five evaluated schemes (ASR at its default replication level).
SCHEMES = ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3")

#: Every optimized kernel that must match the reference loop.
CANDIDATE_KERNELS = ("fast", "batched")

#: Three seeded workload profiles spanning distinct behaviour classes:
#: shared-RW reuse, partitioned capacity pressure, migratory data.
WORKLOADS = (
    ("BARNES", 0.10, 11),
    ("OCEAN-C", 0.10, 23),
    ("DEDUP", 0.10, 37),
)

#: A fixed replica-dominated profile: high-reuse shared reads over a
#: working set between the L1 and the LLC, with enough written-shared
#: and migratory traffic to cycle locality classifiers through
#: promotions and demotions.  The regime of the batched kernel's
#: local-replica fast path (and the paper's headline mechanism).
REPLICA_PROFILE = BenchmarkProfile(
    name="REPLICA-LOOP",
    description="replica-dominated shared-read loop for the differential suite",
    f_ifetch=0.08,
    f_private=0.07,
    f_shared_ro=0.60,
    f_shared_rw=0.15,
    f_migratory=0.10,
    shared_ro_ws_x_l1d=2.5,
    shared_rw_ws_x_l1d=1.0,
    migratory_window_x_l1d=0.5,
    private_ws_x_l1d=0.4,
    private_burst=8,
    write_frac_rw=0.15,
    mean_gap=0.0,
    accesses_per_core=1500,
    barriers=1,
)


@pytest.fixture(scope="module")
def config() -> MachineConfig:
    return MachineConfig.tiny()


@pytest.fixture(scope="module")
def trace_sets(config):
    sets = {
        name: build_trace(get_profile(name), config, scale=scale, seed=seed)
        for name, scale, seed in WORKLOADS
    }
    sets["REPLICA-LOOP"] = build_trace(REPLICA_PROFILE, config, scale=1.0, seed=53)
    return sets


class TestKernelEquivalence:
    @pytest.mark.parametrize("candidate", CANDIDATE_KERNELS)
    @pytest.mark.parametrize(
        "workload", [name for name, _s, _e in WORKLOADS] + ["REPLICA-LOOP"]
    )
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_identical_stats(self, config, trace_sets, scheme, workload, candidate):
        stats = verify_kernels(
            lambda: make_scheme(scheme, config),
            trace_sets[workload],
            candidate=candidate,
            context=f"{scheme} on {workload}",
        )
        # Sanity: the workload actually exercised the machine.
        assert stats.completion_time > 0
        assert stats.l1_misses() > 0

    def test_verify_all_kernels_covers_every_candidate(self, config, trace_sets):
        """The three-way check the fuzz CLI drives: every registered
        non-reference kernel against the reference in one call."""
        stats = verify_all_kernels(
            lambda: make_scheme("RT-3", config), trace_sets["BARNES"]
        )
        assert stats.completion_time > 0

    def test_verify_matrix_runs_all_combinations(self, config, trace_sets):
        builders = {scheme: (lambda s=scheme: make_scheme(s, config))
                    for scheme in ("S-NUCA", "RT-3")}
        results = verify_matrix(builders, trace_sets)
        assert len(results) == 2 * len(trace_sets)
        report = summarize(sorted(results.items()))
        for scheme in builders:
            assert scheme in report


class TestStatsDiff:
    def _stats(self) -> SimStats:
        stats = SimStats(2)
        stats.counters = Counter({"l1d_hits": 3})
        stats.latency = Counter({"Compute": 10.0})
        stats.core_finish = [5.0, 7.0]
        stats.completion_time = 7.0
        return stats

    def test_identical_stats_have_empty_diff(self):
        assert stats_diff(self._stats(), self._stats()) == []
        assert_stats_equal(self._stats(), self._stats())

    def test_counter_divergence_reported(self):
        reference, candidate = self._stats(), self._stats()
        candidate.counters["l1d_hits"] += 1
        candidate.latency["Compute"] = 11.0
        diffs = stats_diff(reference, candidate)
        assert {(diff.section, diff.key) for diff in diffs} == {
            ("counters", "l1d_hits"),
            ("latency", "Compute"),
        }

    def test_missing_key_counts_as_divergence(self):
        reference, candidate = self._stats(), self._stats()
        candidate.counters["invalidations_sent"] = 2
        diffs = stats_diff(reference, candidate)
        assert [diff.key for diff in diffs] == ["invalidations_sent"]
        assert diffs[0].reference == 0

    def test_core_finish_and_completion_divergence(self):
        reference, candidate = self._stats(), self._stats()
        candidate.core_finish[1] = 9.0
        candidate.completion_time = 9.0
        sections = {diff.section for diff in stats_diff(reference, candidate)}
        assert sections == {"core_finish", "completion_time"}

    def test_mismatch_raises_with_readable_report(self):
        reference, candidate = self._stats(), self._stats()
        candidate.counters["l1d_hits"] = 99
        with pytest.raises(DifferentialMismatch, match=r"counters\[l1d_hits\]"):
            assert_stats_equal(reference, candidate, context="unit")

    def test_statsdiff_str(self):
        diff = StatsDiff("counters", "x", 1, 2)
        assert "counters[x]" in str(diff)


class TestDiffKernels:
    def test_returns_both_stats_and_empty_diff(self, config, trace_sets):
        reference, candidate, diffs = diff_kernels(
            lambda: make_scheme("VR", config), trace_sets["BARNES"]
        )
        assert diffs == []
        assert reference.completion_time == candidate.completion_time


class _CorruptAfter(ReferenceKernel):
    """Reference loop that miscounts one hit once core 0's trace reaches
    ``threshold`` records — a synthetic kernel bug with a known onset,
    for exercising the first-divergence bisection."""

    name = "corrupt"

    def __init__(self, threshold: int) -> None:
        super().__init__()
        self.threshold = threshold

    def run(self, engine, traces) -> None:
        super().run(engine, traces)
        if len(traces.cores[0]) >= self.threshold:
            engine.stats.counters["l1d_hits"] += 1


class TestFirstDivergence:
    def test_truncation_preserves_barrier_balance(self, config, trace_sets):
        traces = trace_sets["BARNES"]
        prefix = truncated_traces(traces, 10)
        counts = {trace.barrier_count() for trace in prefix.cores}
        assert len(counts) == 1
        for core, trace in enumerate(prefix.cores):
            assert len(trace) >= 10
            non_barrier = trace.types[:10] != AccessType.BARRIER
            np.testing.assert_array_equal(
                trace.lines[:10][non_barrier],
                traces.cores[core].lines[:10][non_barrier],
            )

    def test_truncated_prefix_simulates_identically_across_kernels(
        self, config, trace_sets
    ):
        prefix = truncated_traces(trace_sets["OCEAN-C"], 25)
        verify_all_kernels(lambda: make_scheme("S-NUCA", config), prefix)

    def test_bisection_finds_divergence_onset(self, config, trace_sets):
        traces = trace_sets["DEDUP"]
        threshold = 137
        first = locate_first_divergence(
            lambda: make_scheme("S-NUCA", config),
            traces,
            candidate=_CorruptAfter(threshold),
        )
        assert first is not None
        assert first.record_index == threshold
        assert first.cycle > 0
        assert [
            (diff.section, diff.key) for diff in first.diffs
        ] == [("counters", "l1d_hits")]

    def test_bisection_returns_none_when_identical(self, config, trace_sets):
        assert (
            locate_first_divergence(
                lambda: make_scheme("S-NUCA", config), trace_sets["DEDUP"]
            )
            is None
        )

    def test_mismatch_report_leads_with_first_divergence(self, config, trace_sets):
        with pytest.raises(DifferentialMismatch) as excinfo:
            verify_kernels(
                lambda: make_scheme("S-NUCA", config),
                trace_sets["DEDUP"],
                candidate=_CorruptAfter(101),
                context="unit",
            )
        error = excinfo.value
        assert isinstance(error.first, FirstDivergence)
        assert error.first.record_index == 101
        message = str(error)
        assert "first divergence within the first 101 record(s)/core" in message
        assert "cycle" in message
        assert "counters[l1d_hits]" in message

    def test_locate_false_skips_bisection(self, config, trace_sets):
        with pytest.raises(DifferentialMismatch) as excinfo:
            verify_kernels(
                lambda: make_scheme("S-NUCA", config),
                trace_sets["DEDUP"],
                candidate=_CorruptAfter(1),
                locate=False,
            )
        assert excinfo.value.first is None
