"""Protocol-engine edge cases: rehoming, writebacks, serialization."""

import pytest

from repro.common.params import CacheGeometry, MachineConfig
from repro.common.types import AccessType, MESIState, MissStatus
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.rnuca import RNucaScheme
from repro.schemes.snuca import SNucaScheme
from tests.helpers import check_coherence, drive, read, write


class TestRNucaRehoming:
    def test_private_to_shared_migration_counted(self, tiny_config):
        engine = RNucaScheme(tiny_config)
        drive(engine, [read(0, 101)])            # page private at core 0
        assert engine.slices[0].home(101) is not None
        drive(engine, [read(1, 101)], start_time=1000.0)  # page goes shared
        assert engine.stats.counters["rehomings"] == 1
        # The line now lives at its interleaved home (101 % 4 = 1).
        assert engine.slices[1].home(101) is not None
        assert engine.slices[0].home(101) is None

    def test_migration_preserves_dirty_data(self, tiny_config):
        engine = RNucaScheme(tiny_config)
        drive(engine, [write(0, 101)])           # dirty at private home 0
        drive(engine, [read(1, 101)], start_time=1000.0)  # rehome to 101%4=1
        # The dirty line was written back and refetched; no data lost
        # (modelled as the refetch finding memory up to date).
        assert engine.stats.counters["dram_writebacks"] >= 1
        assert check_coherence(engine) == []

    def test_instruction_lines_never_migrate(self, tiny_config):
        engine = RNucaScheme(tiny_config)
        accesses = [(core, AccessType.IFETCH, 200) for core in range(4)]
        drive(engine, accesses)
        assert engine.stats.counters.get("rehomings", 0) == 0

    def test_lazy_migration_only_on_access(self, tiny_config):
        engine = RNucaScheme(tiny_config)
        drive(engine, [read(0, 101), read(0, 102)])
        # Another core touches line 101 only; line 102's cached home entry
        # must not move until line 102 itself is accessed.
        drive(engine, [read(1, 101)], start_time=1000.0)
        assert engine.stats.counters["rehomings"] == 1
        drive(engine, [read(1, 102)], start_time=2000.0)
        assert engine.stats.counters["rehomings"] == 2


class TestWritebackPaths:
    def test_home_eviction_writes_dirty_to_dram(self):
        config = MachineConfig.tiny(llc_slice=CacheGeometry(sets=1, ways=2))
        engine = SNucaScheme(config)
        # Dirty line 0 loses its L1 backing (writeback merges at the
        # home), then the slice eviction must push it off chip.
        drive(engine, [write(1, 0), read(1, 4), read(1, 8)])
        assert engine.stats.counters["home_evictions"] >= 1
        assert engine.dram.writes >= 1

    def test_clean_eviction_skips_dram_write(self):
        config = MachineConfig.tiny(llc_slice=CacheGeometry(sets=1, ways=2))
        engine = SNucaScheme(config)
        drive(engine, [read(1, 0), read(1, 4), read(1, 8)])
        assert engine.stats.counters["home_evictions"] >= 1
        assert engine.dram.writes == 0

    def test_dirty_replica_eviction_reaches_home(self):
        """An M-state replica evicted for capacity merges its data at the
        home (the ack carries the dirty line)."""
        config = MachineConfig.tiny(
            replication_threshold=1,
            llc_slice=CacheGeometry(sets=2, ways=2),
        )
        engine = LocalityAwareScheme(config)
        drive(engine, [read(2, 101), read(3, 101)])     # page shared, home 1
        drive(engine, [write(0, 101)], start_time=1000.0)  # M replica at 0
        replica = engine.slices[0].replica(101)
        assert replica is not None
        # Evict it by filling core 0's slice set with replicas of other
        # shared lines mapping to the same set.
        target_set = engine.slices[0].geometry.set_index(101)
        fillers = []
        line = 102
        while len(fillers) < 3 and line < 400:
            if (engine.slices[0].geometry.set_index(line) == target_set
                    and line % 4 != 0):
                fillers.append(line)
            line += 1
        for filler in fillers:
            drive(engine, [read(2, filler), read(3, filler)],
                  start_time=2000.0 + filler)
            drive(engine, [read(0, filler)], start_time=3000.0 + filler)
        if engine.slices[0].replica(101) is None:
            home_entry = engine.slices[1].home(101)
            assert home_entry is not None
            assert home_entry.dirty
            assert engine.stats.counters["replica_evictions"] >= 1
        assert check_coherence(engine) == []


class TestHomeSerialization:
    def test_same_line_requests_queue(self, tiny_config):
        from repro.sim import stats as stat_names
        engine = SNucaScheme(tiny_config)
        drive(engine, [read(0, 5)])
        # Three cores hit the same line at the same instant.
        for core in (1, 2, 3):
            engine.access(core, AccessType.READ, 5, 5000.0)
        assert engine.stats.latency[stat_names.LLC_HOME_WAITING] > 0

    def test_different_lines_do_not_queue(self, tiny_config):
        from repro.sim import stats as stat_names
        engine = SNucaScheme(tiny_config)
        drive(engine, [read(0, 5), read(0, 9), read(0, 13)])
        waiting_before = engine.stats.latency[stat_names.LLC_HOME_WAITING]
        for core, line in ((1, 17), (2, 21), (3, 25)):
            engine.access(core, AccessType.READ, line, 5000.0)
        assert engine.stats.latency[stat_names.LLC_HOME_WAITING] == waiting_before


class TestInstructionPaths:
    def test_ifetch_uses_l1i(self, tiny_config):
        engine = SNucaScheme(tiny_config)
        drive(engine, [(0, AccessType.IFETCH, 7)])
        assert engine.l1i[0].lookup(7) is not None
        assert engine.l1d[0].lookup(7) is None

    def test_l1i_eviction_notifies_home(self, tiny_config):
        engine = SNucaScheme(tiny_config)
        # L1-I tiny: 2 sets x 2 ways; lines 1, 3, 5, 7, 9 alternate sets.
        drive(engine, [(0, AccessType.IFETCH, line) for line in (1, 3, 5, 7, 9)])
        assert engine.stats.counters["l1_evictions"] >= 1
        assert check_coherence(engine) == []

    def test_shared_instruction_line_state(self, tiny_config):
        engine = SNucaScheme(tiny_config)
        drive(engine, [(core, AccessType.IFETCH, 7) for core in range(4)])
        states = {engine.l1i[core].lookup(7).state for core in range(4)}
        assert states == {MESIState.SHARED}
