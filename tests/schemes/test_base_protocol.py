"""Directory protocol flows on the S-NUCA engine (the common machinery)."""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import AccessType, MESIState, MissStatus
from repro.schemes.snuca import SNucaScheme
from tests.helpers import check_coherence, drive, read, write


@pytest.fixture
def engine(tiny_config):
    return SNucaScheme(tiny_config)


class TestReadPath:
    def test_cold_read_misses_offchip(self, engine):
        (result,) = drive(engine, [read(0, 5)])
        assert result.status == MissStatus.OFF_CHIP_MISS
        assert engine.stats.counters["offchip_misses"] == 1

    def test_sole_reader_granted_exclusive(self, engine):
        drive(engine, [read(0, 5)])
        assert engine.l1d[0].lookup(5).state == MESIState.EXCLUSIVE

    def test_second_access_hits_l1(self, engine):
        results = drive(engine, [read(0, 5), read(0, 5)])
        assert results[1].status == MissStatus.L1_HIT
        assert results[1].latency == engine.config.l1_latency

    def test_second_reader_hits_home(self, engine):
        results = drive(engine, [read(0, 5), read(1, 5)])
        assert results[1].status == MissStatus.LLC_HOME_HIT

    def test_second_reader_downgrades_owner(self, engine):
        drive(engine, [read(0, 5), read(1, 5)])
        assert engine.l1d[0].lookup(5).state == MESIState.SHARED
        assert engine.l1d[1].lookup(5).state == MESIState.SHARED
        assert engine.stats.counters["downgrades"] == 1

    def test_directory_tracks_both_readers(self, engine):
        drive(engine, [read(0, 5), read(1, 5)])
        home = engine.slices[5 % 4].home(5)
        assert home.sharers.members() == {0, 1}

    def test_home_hit_at_local_slice_cheap(self, engine):
        """A request whose home is the local slice never crosses the mesh."""
        drive(engine, [read(0, 4), read(0, 100)])  # line 4 homes at core 0
        flits_before = engine.mesh.messages_sent
        engine.l1d[0].invalidate(4)  # force an L1 miss without traffic
        home = engine.slices[0].home(4)
        home.sharers.remove(0)
        (result,) = drive(engine, [read(0, 4)], start_time=1000.0)
        assert result.status == MissStatus.LLC_HOME_HIT


class TestWritePath:
    def test_write_grants_modified(self, engine):
        drive(engine, [write(0, 5)])
        entry = engine.l1d[0].lookup(5)
        assert entry.state == MESIState.MODIFIED
        assert entry.dirty

    def test_write_invalidates_readers(self, engine):
        drive(engine, [read(1, 5), read(2, 5), write(0, 5)])
        assert engine.l1d[1].lookup(5) is None
        assert engine.l1d[2].lookup(5) is None
        assert engine.stats.counters["invalidations_sent"] >= 2

    def test_write_leaves_single_sharer(self, engine):
        drive(engine, [read(1, 5), write(0, 5)])
        home = engine.slices[5 % 4].home(5)
        assert home.sharers.members() == {0}
        assert home.owner == 0

    def test_dirty_owner_writes_back_on_read(self, engine):
        drive(engine, [write(0, 5), read(1, 5)])
        home = engine.slices[5 % 4].home(5)
        assert home.dirty
        assert engine.stats.counters["dirty_writebacks"] >= 1

    def test_upgrade_from_shared(self, engine):
        drive(engine, [read(0, 5), read(1, 5), write(0, 5)])
        assert engine.l1d[0].lookup(5).state == MESIState.MODIFIED
        assert engine.l1d[1].lookup(5) is None

    def test_write_write_migration(self, engine):
        drive(engine, [write(0, 5), write(1, 5)])
        assert engine.l1d[0].lookup(5) is None
        assert engine.l1d[1].lookup(5).state == MESIState.MODIFIED


class TestCoherenceInvariants:
    def test_after_read_sharing(self, engine):
        drive(engine, [read(core, line) for core in range(4) for line in (5, 9, 13)])
        assert check_coherence(engine) == []

    def test_after_write_storm(self, engine):
        accesses = []
        for turn in range(6):
            for core in range(4):
                accesses.append(write(core, 7))
                accesses.append(read(core, 11))
        drive(engine, accesses)
        assert check_coherence(engine) == []

    def test_after_mixed_traffic(self, engine):
        import random
        rng = random.Random(42)
        accesses = []
        for _ in range(300):
            core = rng.randrange(4)
            line = rng.randrange(24)
            kind = write if rng.random() < 0.3 else read
            accesses.append(kind(core, line))
        drive(engine, accesses)
        assert check_coherence(engine) == []


class TestL1Eviction:
    def test_eviction_notifies_home(self, engine, tiny_config):
        """Filling an L1 set evicts the LRU line and removes the sharer."""
        # Lines 0, 16, 32 share L1 set 0 (4 sets) but have distinct homes.
        drive(engine, [read(0, 0), read(0, 16), read(0, 32)])
        assert engine.stats.counters["l1_evictions"] == 1
        home = engine.slices[0].home(0)
        assert home is not None
        assert 0 not in home.sharers.members()

    def test_dirty_eviction_merges_at_home(self, engine):
        drive(engine, [write(0, 16), read(0, 0), read(0, 32)])
        home = engine.slices[0].home(16)
        assert home.dirty


class TestHomeEviction:
    def test_back_invalidation_on_home_eviction(self, tiny_config):
        """Evicting a home line invalidates every L1 copy (inclusion)."""
        from repro.common.params import CacheGeometry
        config = MachineConfig.tiny(llc_slice=CacheGeometry(sets=1, ways=2))
        engine = SNucaScheme(config)
        # Three lines homed at core 0 overflow its 2-way slice.
        drive(engine, [read(1, 0), read(1, 4), read(1, 8)])
        assert engine.stats.counters["home_evictions"] >= 1
        assert check_coherence(engine) == []

    def test_inclusion_holds_under_pressure(self):
        from repro.common.params import CacheGeometry
        config = MachineConfig.tiny(llc_slice=CacheGeometry(sets=2, ways=2))
        engine = SNucaScheme(config)
        accesses = [read(core, line) for line in range(0, 64, 4) for core in range(4)]
        drive(engine, accesses)
        assert check_coherence(engine) == []


class TestAckwiseBroadcast:
    def test_overflow_broadcasts_invalidations(self):
        config = MachineConfig.small(ackwise_pointers=2)
        engine = SNucaScheme(config)
        readers = [read(core, 5) for core in range(6)]
        drive(engine, readers + [write(6, 5)])
        assert engine.stats.counters["broadcast_invalidations"] >= 1
        # Broadcast sends an invalidation to every core.
        assert engine.stats.counters["invalidations_sent"] >= config.num_cores - 1
        assert check_coherence(engine) == []


class TestLatencyAccounting:
    def test_l1_hit_is_one_cycle(self, engine):
        results = drive(engine, [read(0, 5), read(0, 5)])
        assert results[1].latency == 1

    def test_remote_home_slower_than_local(self, engine):
        remote = drive(engine, [read(0, 7)])[0]     # home = core 3
        local = drive(engine, [read(3, 11)], start_time=10000.0)[0]  # home = 3
        assert remote.latency > local.latency

    def test_offchip_slower_than_home_hit(self, engine):
        miss = drive(engine, [read(0, 5)])[0]
        engine.l1d[0].invalidate(5)
        engine.slices[1].home(5).sharers.remove(0)
        hit = drive(engine, [read(0, 5)], start_time=10000.0)[0]
        assert miss.latency > hit.latency
        assert miss.latency >= engine.config.dram_latency_cycles

    def test_waiting_bucket_counts_serialization(self, engine):
        """Back-to-back requests to one line serialize at the home."""
        from repro.sim import stats as stat_names
        drive(engine, [read(0, 5)])
        engine.access(1, AccessType.READ, 5, 1000.0)
        engine.access(2, AccessType.READ, 5, 1000.0)
        assert engine.stats.latency[stat_names.LLC_HOME_WAITING] > 0
