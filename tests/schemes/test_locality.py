"""End-to-end behaviour of the locality-aware replication protocol."""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import MESIState, MissStatus
from repro.schemes.locality import LocalityAwareScheme
from tests.helpers import check_coherence, drive, find_replica, ifetch, read, write


def rt1_engine(**overrides):
    config = MachineConfig.tiny(replication_threshold=1, **overrides)
    return LocalityAwareScheme(config)


def rt3_engine(**overrides):
    config = MachineConfig.tiny(replication_threshold=3, **overrides)
    return LocalityAwareScheme(config)


def make_shared(engine, line, cores=(2, 3)):
    """Touch a line from two cores so its page classifies as shared."""
    drive(engine, [read(cores[0], line), read(cores[1], line)])


def churn_l1d(engine, core, base, start=0.0):
    """Evict everything from a core's L1-D with private filler reads."""
    lines = engine.config.l1d.lines
    drive(
        engine,
        [read(core, base + offset) for offset in range(lines)],
        start_time=start,
    )


class TestReplicaCreation:
    def test_rt1_creates_replica_on_first_home_read(self):
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        replica = find_replica(engine, 0, 101)
        assert replica is not None
        assert engine.stats.counters["replicas_created"] >= 1

    def test_rt3_needs_three_home_accesses(self):
        engine = rt3_engine()
        make_shared(engine, 101)
        # Each round: read at home (L1 churn in between forces re-requests).
        for round_index in range(2):
            drive(engine, [read(0, 101)], start_time=1000.0 * (round_index + 1))
            churn_l1d(engine, 0, 100000 + round_index * 1000,
                      start=1000.0 * (round_index + 1) + 100)
            assert find_replica(engine, 0, 101) is None
        drive(engine, [read(0, 101)], start_time=5000.0)
        assert find_replica(engine, 0, 101) is not None
        assert engine.stats.counters["promotions"] >= 1

    def test_no_replica_when_home_is_local(self):
        """R-NUCA places private pages locally; the home IS the slice."""
        engine = rt1_engine()
        drive(engine, [read(0, 100)])  # first touch -> private at core 0
        assert engine.slices[0].home(100) is not None
        assert find_replica(engine, 0, 100) is None

    def test_instruction_replication(self):
        """Unlike R-NUCA, instructions replicate like any other line."""
        engine = rt1_engine()
        drive(engine, [ifetch(2, 101), ifetch(3, 101)])  # page -> shared
        drive(engine, [ifetch(0, 101)], start_time=1000.0)
        assert find_replica(engine, 0, 101) is not None


class TestReplicaHits:
    def test_replica_hit_after_l1_eviction(self):
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        churn_l1d(engine, 0, 100000, start=2000.0)
        (result,) = drive(engine, [read(0, 101)], start_time=50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT
        assert engine.stats.counters["llc_replica_hits"] == 1

    def test_replica_reuse_counter_increments(self):
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        churn_l1d(engine, 0, 100000, start=2000.0)
        drive(engine, [read(0, 101)], start_time=50000.0)
        assert find_replica(engine, 0, 101).reuse.value == 2

    def test_replica_hit_faster_than_home(self):
        engine = rt1_engine()
        make_shared(engine, 103)  # home = core 3, far from core 0
        (home_access,) = drive(engine, [read(0, 103)], start_time=1000.0)
        churn_l1d(engine, 0, 100000, start=2000.0)
        (replica_hit,) = drive(engine, [read(0, 103)], start_time=50000.0)
        assert replica_hit.latency < home_access.latency


class TestWritePath:
    def test_shared_replica_cannot_satisfy_write(self):
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        (result,) = drive(engine, [write(0, 101)], start_time=2000.0)
        assert result.status != MissStatus.LLC_REPLICA_HIT

    def test_write_creates_modified_replica(self):
        """RT-1 write promotion materializes an M-state replica."""
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [write(0, 101)], start_time=1000.0)
        replica = find_replica(engine, 0, 101)
        assert replica is not None
        assert replica.state == MESIState.MODIFIED

    def test_modified_replica_serves_write_locally(self):
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [write(0, 101)], start_time=1000.0)
        churn_l1d(engine, 0, 100000, start=2000.0)
        (result,) = drive(engine, [write(0, 101)], start_time=50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT

    def test_write_invalidates_remote_replicas(self):
        engine = rt1_engine()
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        assert find_replica(engine, 0, 101) is not None
        drive(engine, [write(1, 101)], start_time=2000.0)
        assert find_replica(engine, 0, 101) is None
        assert engine.stats.counters["replica_invalidations"] >= 1

    def test_migratory_data_gets_em_replicas(self):
        """Repeated solo read+write visits promote the writer; the replica
        is created in M so later visits stay local (Section 2.3.1)."""
        engine = rt3_engine()
        make_shared(engine, 101)
        for round_index in range(3):
            start = 10000.0 * (round_index + 1)
            drive(engine, [read(0, 101), write(0, 101)], start_time=start)
            churn_l1d(engine, 0, 100000 + round_index * 1000, start=start + 500)
        replica = find_replica(engine, 0, 101)
        assert replica is not None
        assert replica.state == MESIState.MODIFIED


class TestDemotion:
    def test_invalidation_with_low_reuse_demotes(self):
        engine = rt3_engine()
        make_shared(engine, 101)
        # Promote core 0 the honest way.
        for round_index in range(3):
            start = 10000.0 * (round_index + 1)
            drive(engine, [read(0, 101)], start_time=start)
            churn_l1d(engine, 0, 100000 + round_index * 1000, start=start + 500)
        # First write: residual home reuse keeps replica status.
        drive(engine, [write(1, 101)], start_time=50000.0)
        # Re-fetch creates a fresh replica (reuse 1), then a write lands
        # before any further reuse: XReuse = 1 < 3 -> demote.
        drive(engine, [read(0, 101)], start_time=60000.0)
        assert find_replica(engine, 0, 101) is not None
        drive(engine, [write(1, 101)], start_time=70000.0)
        assert engine.stats.counters["demotions"] >= 1
        # The next fetch by core 0 must NOT create a replica.
        drive(engine, [read(0, 101)], start_time=80000.0)
        assert find_replica(engine, 0, 101) is None

    def test_coherence_invariants_throughout(self):
        engine = rt1_engine()
        import random
        rng = random.Random(7)
        accesses = []
        for _ in range(400):
            core = rng.randrange(4)
            line = rng.randrange(32)
            accesses.append(write(core, line) if rng.random() < 0.3 else read(core, line))
        drive(engine, accesses)
        assert check_coherence(engine) == []


class TestOracleLookup:
    def test_oracle_skips_probe_cost_on_miss(self):
        config = MachineConfig.tiny(replication_threshold=3)
        probe_engine = LocalityAwareScheme(config)
        oracle_engine = LocalityAwareScheme(config, oracle_lookup=True)
        for engine in (probe_engine, oracle_engine):
            make_shared(engine, 101)
        (with_probe,) = drive(probe_engine, [read(0, 101)], start_time=1000.0)
        (with_oracle,) = drive(oracle_engine, [read(0, 101)], start_time=1000.0)
        assert with_oracle.latency == with_probe.latency - config.llc_tag_latency

    def test_oracle_still_hits_replicas(self):
        engine = LocalityAwareScheme(
            MachineConfig.tiny(replication_threshold=1), oracle_lookup=True
        )
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        churn_l1d(engine, 0, 100000, start=2000.0)
        (result,) = drive(engine, [read(0, 101)], start_time=50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT


class TestEnergyModel:
    def test_directory_energy_scaled(self):
        engine = rt3_engine()
        assert engine.energy_model().params.directory_scale == pytest.approx(1.2)

    def test_counter_width_follows_rt(self):
        engine = LocalityAwareScheme(MachineConfig.tiny(replication_threshold=8))
        assert engine.reuse_max >= 8
