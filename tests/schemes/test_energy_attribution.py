"""Energy events land in the right components for each scheme."""

import pytest

from repro.common.params import MachineConfig
from repro.energy import model as events
from repro.schemes.factory import make_scheme
from tests.helpers import drive, read, write


class TestAttribution:
    def test_l1i_events_separate_from_l1d(self, tiny_config):
        from repro.common.types import AccessType
        engine = make_scheme("S-NUCA", tiny_config)
        drive(engine, [(0, AccessType.IFETCH, 7), read(0, 5)])
        assert engine.stats.energy_counts[events.L1I_READ] >= 1
        assert engine.stats.energy_counts[events.L1D_READ] >= 1

    def test_offchip_miss_charges_dram(self, tiny_config):
        engine = make_scheme("S-NUCA", tiny_config)
        drive(engine, [read(0, 5)])
        assert engine.stats.energy_counts[events.DRAM_READ] == 1
        assert engine.stats.energy_counts[events.LLC_DATA_WRITE] >= 1  # fill

    def test_home_hit_charges_llc_and_directory(self, tiny_config):
        engine = make_scheme("S-NUCA", tiny_config)
        drive(engine, [read(0, 5), read(1, 5)])
        counts = engine.stats.energy_counts
        assert counts[events.LLC_TAG_READ] >= 2
        assert counts[events.LLC_DATA_READ] >= 2
        assert counts[events.DIR_READ] >= 2
        assert counts[events.DIR_WRITE] >= 2

    def test_network_counters_folded_at_finalize(self, tiny_config):
        engine = make_scheme("S-NUCA", tiny_config)
        drive(engine, [read(0, 5)])  # remote home -> mesh traffic
        engine.finalize()
        assert engine.stats.energy_counts[events.ROUTER_FLIT] > 0
        assert engine.stats.energy_counts[events.LINK_FLIT] > 0
        assert engine.stats.energy_counts[events.ROUTER_FLIT] == \
            engine.mesh.router_flit_traversals

    def test_replica_creation_charges_llc_write(self):
        engine = make_scheme(
            "Locality", MachineConfig.tiny(replication_threshold=1)
        )
        drive(engine, [read(2, 101), read(3, 101)])
        writes_before = engine.stats.energy_counts[events.LLC_DATA_WRITE]
        drive(engine, [read(0, 101)], start_time=1000.0)
        assert engine.stats.energy_counts[events.LLC_DATA_WRITE] > writes_before

    def test_local_home_access_has_no_network(self, tiny_config):
        engine = make_scheme("S-NUCA", tiny_config)
        drive(engine, [read(0, 4)])  # home = core 0, only DRAM traffic
        controller = engine.dram.controller_for(4)
        engine.finalize()
        if controller.core_id == 0:
            assert engine.stats.energy_counts[events.LINK_FLIT] == 0

    def test_writeback_charges_dram_write(self, tiny_config):
        from repro.common.params import CacheGeometry
        config = MachineConfig.tiny(llc_slice=CacheGeometry(sets=1, ways=2))
        engine = make_scheme("S-NUCA", config)
        drive(engine, [write(1, 0), read(1, 4), read(1, 8)])
        assert engine.stats.energy_counts[events.DRAM_WRITE] >= 1
