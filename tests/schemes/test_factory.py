"""Scheme factory: figure labels map to configured engines."""

import pytest

from repro.schemes.asr import ASRScheme
from repro.schemes.factory import FIGURE_SCHEMES, make_scheme, scheme_builder
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.rnuca import RNucaScheme
from repro.schemes.snuca import SNucaScheme
from repro.schemes.victim import VictimReplicationScheme


class TestLabels:
    def test_figure_scheme_order(self):
        assert FIGURE_SCHEMES == ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-1", "RT-3", "RT-8")

    def test_snuca(self, tiny_config):
        assert isinstance(make_scheme("S-NUCA", tiny_config), SNucaScheme)

    def test_rnuca(self, tiny_config):
        assert isinstance(make_scheme("R-NUCA", tiny_config), RNucaScheme)

    def test_vr(self, tiny_config):
        assert isinstance(make_scheme("VR", tiny_config), VictimReplicationScheme)

    def test_asr_with_level(self, tiny_config):
        engine = make_scheme("ASR", tiny_config, replication_level=0.75)
        assert isinstance(engine, ASRScheme)
        assert engine.replication_level == 0.75

    def test_rt_labels_configure_threshold(self, tiny_config):
        for threshold in (1, 3, 8):
            engine = make_scheme(f"RT-{threshold}", tiny_config)
            assert isinstance(engine, LocalityAwareScheme)
            assert engine.config.replication_threshold == threshold

    def test_rt_label_does_not_mutate_input_config(self, tiny_config):
        make_scheme("RT-8", tiny_config)
        assert tiny_config.replication_threshold == 3

    def test_locality_label(self, tiny_config):
        engine = make_scheme("Locality", tiny_config, oracle_lookup=True)
        assert isinstance(engine, LocalityAwareScheme)
        assert engine.oracle_lookup

    def test_unknown_label(self, tiny_config):
        with pytest.raises(ValueError, match="unknown scheme"):
            make_scheme("L2-PRIVATE", tiny_config)


class TestBuilder:
    def test_builder_is_reusable(self, tiny_config):
        build = scheme_builder("RT-3")
        first = build(tiny_config)
        second = build(tiny_config)
        assert first is not second
        assert first.config.replication_threshold == 3

    def test_builder_name(self):
        assert scheme_builder("RT-3").__name__ == "build_rt_3"


class TestSchemeNames:
    def test_names_for_reporting(self, tiny_config):
        assert make_scheme("S-NUCA", tiny_config).name == "S-NUCA"
        assert make_scheme("R-NUCA", tiny_config).name == "R-NUCA"
        assert make_scheme("VR", tiny_config).name == "VR"
        assert make_scheme("ASR", tiny_config).name == "ASR"
        assert make_scheme("RT-3", tiny_config).name == "Locality"
