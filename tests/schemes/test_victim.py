"""Victim Replication: placement rules and the exclusive L1/slice relation."""

import pytest

from repro.common.params import CacheGeometry, MachineConfig
from repro.common.types import MESIState, MissStatus
from repro.schemes.victim import VictimReplicationScheme
from tests.helpers import check_coherence, drive, read, write


@pytest.fixture
def engine(tiny_config):
    return VictimReplicationScheme(tiny_config)


def evict_from_l1(engine, core, line, start=0.0):
    """Evict ``line`` from the core's L1-D by filling its set."""
    sets = engine.config.l1d.sets
    ways = engine.config.l1d.ways
    fillers = [line + sets * (k + 1) for k in range(ways)]
    drive(engine, [read(core, filler) for filler in fillers], start_time=start)


class TestVictimPlacement:
    def test_remote_victim_placed_in_local_slice(self, engine):
        drive(engine, [read(0, 5)])  # home = core 1
        evict_from_l1(engine, 0, 5, start=100.0)  # evicts line 5 from L1
        assert engine.slices[0].replica(5) is not None
        assert engine.stats.counters["vr_placements"] >= 1

    def test_local_home_victim_not_replicated(self, engine):
        drive(engine, [read(0, 4)])  # home = core 0
        evict_from_l1(engine, 0, 4, start=100.0)
        assert engine.slices[0].replica(4) is None

    def test_placement_requires_cheap_candidate(self):
        """With every way holding a home line with sharers, VR refuses."""
        config = MachineConfig.tiny(llc_slice=CacheGeometry(sets=2, ways=2))
        engine = VictimReplicationScheme(config)
        # Lines 0 and 8 home at core 0 and share its slice set 0 under the
        # hashed index; core 1 keeps them in its L1, so both ways of that
        # set hold home lines with active sharers.
        drive(engine, [read(1, 0), read(1, 8)])
        # Core 0 reads three remote lines sharing its L1 set; the third
        # evicts line 5, whose slice-0 target set is the full set 0.
        drive(engine, [read(0, 5), read(0, 9), read(0, 13)], start_time=1000.0)
        assert engine.stats.counters["l1_evictions"] >= 1
        assert engine.stats.counters.get("vr_placement_rejected", 0) >= 1
        assert engine.slices[0].replica(5) is None
        assert check_coherence(engine) == []


class TestExclusiveRelation:
    def test_replica_hit_moves_line_to_l1(self, engine):
        drive(engine, [read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is not None
        (result,) = drive(engine, [read(0, 5)], start_time=50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT
        assert engine.slices[0].replica(5) is None  # moved out
        assert engine.l1d[0].lookup(5) is not None

    def test_dirty_data_travels_with_the_line(self, engine):
        drive(engine, [write(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        replica = engine.slices[0].replica(5)
        assert replica is not None
        assert replica.dirty or replica.state == MESIState.MODIFIED
        drive(engine, [read(0, 5)], start_time=50000.0)
        entry = engine.l1d[0].lookup(5)
        assert entry.dirty or entry.state == MESIState.MODIFIED

    def test_each_hit_costs_an_llc_write_later(self, engine):
        """The hit/evict ping-pong pays LLC data writes (Section 4.1)."""
        from repro.energy import model as events
        drive(engine, [read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        writes_before = engine.stats.energy_counts[events.LLC_DATA_WRITE]
        drive(engine, [read(0, 5)], start_time=50000.0)   # hit: moves to L1
        evict_from_l1(engine, 0, 5, start=60000.0)          # evict: writes back
        writes_after = engine.stats.energy_counts[events.LLC_DATA_WRITE]
        assert writes_after > writes_before


class TestWriteSemantics:
    def test_modified_replica_serves_write(self, engine):
        drive(engine, [write(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        (result,) = drive(engine, [write(0, 5)], start_time=50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT

    def test_shared_replica_cannot_serve_write(self, engine):
        drive(engine, [read(0, 5), read(1, 5)])  # both S
        evict_from_l1(engine, 0, 5, start=100.0)
        (result,) = drive(engine, [write(0, 5)], start_time=50000.0)
        assert result.status != MissStatus.LLC_REPLICA_HIT
        assert engine.slices[0].replica(5) is None  # collected by the write

    def test_remote_write_invalidates_replica(self, engine):
        drive(engine, [read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is not None
        drive(engine, [write(2, 5)], start_time=50000.0)
        assert engine.slices[0].replica(5) is None


class TestCoherence:
    def test_invariants_under_mixed_traffic(self, engine):
        import random
        rng = random.Random(11)
        accesses = []
        for _ in range(400):
            core = rng.randrange(4)
            line = rng.randrange(40)
            accesses.append(write(core, line) if rng.random() < 0.25 else read(core, line))
        drive(engine, accesses)
        assert check_coherence(engine) == []
