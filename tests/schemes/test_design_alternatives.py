"""The paper's discussed-but-rejected design alternatives.

* Shared-only replica creation (Section 2.3.1)
* Sparse classifier organization (Section 2.3.3)
* Temporal Locality Hints replacement (Section 2.2.4)
"""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import MESIState, MissStatus
from repro.schemes.locality import LocalityAwareScheme
from repro.schemes.snuca import SNucaScheme
from tests.helpers import check_coherence, drive, find_replica, read, write


def make_shared(engine, line, cores=(2, 3)):
    drive(engine, [read(cores[0], line), read(cores[1], line)])


def churn_l1d(engine, core, base, start=0.0):
    lines = engine.config.l1d.lines
    drive(engine, [read(core, base + offset) for offset in range(lines)],
          start_time=start)


class TestSharedOnlyStrategy:
    """Section 2.3.1: replicas restricted to the Shared state."""

    def _engine(self):
        return LocalityAwareScheme(
            MachineConfig.tiny(replication_threshold=1),
            shared_only_replicas=True,
        )

    def test_shared_grant_still_replicates(self):
        engine = self._engine()
        make_shared(engine, 101)
        # Two sharers exist, so core 0's read grant is SHARED -> replica.
        drive(engine, [read(0, 101)], start_time=1000.0)
        assert find_replica(engine, 0, 101) is not None
        assert find_replica(engine, 0, 101).state == MESIState.SHARED

    def test_write_never_creates_replica(self):
        engine = self._engine()
        make_shared(engine, 101)
        drive(engine, [write(0, 101)], start_time=1000.0)
        assert find_replica(engine, 0, 101) is None

    def test_exclusive_grant_not_replicated(self):
        """A sole reader is granted E; the simple strategy skips it."""
        engine = self._engine()
        make_shared(engine, 101)
        drive(engine, [write(0, 101)], start_time=1000.0)   # clears sharers
        churn_l1d(engine, 0, 100000, start=2000.0)          # drop L1 copy
        drive(engine, [read(0, 101)], start_time=50000.0)   # sole sharer -> E
        assert find_replica(engine, 0, 101) is None

    def test_migratory_data_loses(self):
        """The paper's argument for E/M replicas: migratory patterns
        cannot be served locally under the shared-only strategy."""
        full = LocalityAwareScheme(MachineConfig.tiny(replication_threshold=1))
        simple = self._engine()
        for engine in (full, simple):
            make_shared(engine, 101)
            drive(engine, [read(0, 101), write(0, 101)], start_time=1000.0)
            churn_l1d(engine, 0, 100000, start=2000.0)
        assert find_replica(full, 0, 101) is not None       # M replica
        assert find_replica(simple, 0, 101) is None

    def test_coherence_invariants(self):
        engine = self._engine()
        import random
        rng = random.Random(31)
        accesses = []
        for _ in range(300):
            core = rng.randrange(4)
            line = rng.randrange(32)
            accesses.append(write(core, line) if rng.random() < 0.3 else read(core, line))
        drive(engine, accesses)
        assert check_coherence(engine) == []


class TestSparseClassifier:
    """Section 2.3.3: decoupled side-table classifier organization."""

    def _engine(self, entries=1024, rt=1):
        config = MachineConfig.tiny(
            replication_threshold=rt,
            classifier_organization="sparse",
            sparse_classifier_entries=entries,
        )
        return LocalityAwareScheme(config)

    def test_home_entries_carry_no_state(self):
        engine = self._engine()
        make_shared(engine, 101)
        home = engine._home_of_cached_line(0, 101)
        entry = engine.slices[home].home(101)
        assert entry.classifier is None

    def test_replication_still_works(self):
        engine = self._engine()
        make_shared(engine, 101)
        drive(engine, [read(0, 101)], start_time=1000.0)
        assert find_replica(engine, 0, 101) is not None

    def test_capacity_eviction_loses_state(self):
        """With a 1-entry side table, learning one line forgets another.

        Lines 101 and 105 share a home slice (and hence a side table);
        alternating between them evicts each other's classifier state,
        so core 0 never accumulates RT=3 reuse on either.
        """
        engine = self._engine(entries=1, rt=3)
        make_shared(engine, 101)
        make_shared(engine, 105)
        for round_index in range(4):
            start = 10000.0 * (round_index + 1)
            drive(engine, [read(0, 101), read(0, 105)], start_time=start)
            churn_l1d(engine, 0, 100000 + round_index * 1000, start=start + 500)
        assert find_replica(engine, 0, 101) is None
        assert find_replica(engine, 0, 105) is None
        assert engine.stats.counters["sparse_classifier_evictions"] > 0

    def test_large_table_matches_incache_decisions(self):
        sparse = self._engine(entries=4096, rt=3)
        incache = LocalityAwareScheme(MachineConfig.tiny(replication_threshold=3))
        for engine in (sparse, incache):
            make_shared(engine, 101)
            for round_index in range(3):
                start = 10000.0 * (round_index + 1)
                drive(engine, [read(0, 101)], start_time=start)
                churn_l1d(engine, 0, 100000 + round_index * 1000, start=start + 500)
        assert (find_replica(sparse, 0, 101) is None) == \
            (find_replica(incache, 0, 101) is None)

    def test_sparse_pays_extra_directory_energy(self):
        from repro.energy import model as events
        sparse = self._engine()
        incache = LocalityAwareScheme(MachineConfig.tiny(replication_threshold=1))
        for engine in (sparse, incache):
            make_shared(engine, 101)
            drive(engine, [read(0, 101)], start_time=1000.0)
        assert (
            sparse.stats.energy_counts[events.DIR_READ]
            > incache.stats.energy_counts[events.DIR_READ]
        )

    def test_invalid_organization_rejected(self):
        with pytest.raises(ValueError, match="classifier_organization"):
            MachineConfig.tiny(classifier_organization="hybrid")


class TestTemporalLocalityHints:
    """Section 2.2.4: the hint-message alternative to modified-LRU."""

    def test_hints_sent_at_interval(self):
        config = MachineConfig.tiny(tla_hints=True, tla_hint_interval=4)
        engine = SNucaScheme(config)
        drive(engine, [read(0, 5)])
        # 8 L1 hits -> 2 hints.
        drive(engine, [read(0, 5)] * 8, start_time=1000.0)
        assert engine.stats.counters["tla_hints_sent"] == 2

    def test_hints_generate_network_traffic(self):
        config = MachineConfig.tiny(tla_hints=True, tla_hint_interval=2)
        engine = SNucaScheme(config)
        drive(engine, [read(0, 5)])
        before = engine.mesh.messages_sent
        drive(engine, [read(0, 5)] * 4, start_time=1000.0)
        assert engine.mesh.messages_sent > before

    def test_hint_refreshes_llc_lru(self):
        """A hinted line outlives a non-hinted line under LLC pressure."""
        from repro.common.params import CacheGeometry
        config = MachineConfig.tiny(
            tla_hints=True, tla_hint_interval=1,
            llc_slice=CacheGeometry(sets=1, ways=2),
        )
        engine = SNucaScheme(config)
        drive(engine, [read(1, 0), read(1, 4)])        # slice 0 holds 0 and 4
        drive(engine, [read(1, 0)] * 3, start_time=1000.0)  # hints touch line 0
        drive(engine, [read(1, 8)], start_time=2000.0)  # evicts the LRU line
        assert engine.slices[0].home(0) is not None     # hinted line survived
        assert engine.slices[0].home(4) is None

    def test_no_hints_by_default(self):
        engine = SNucaScheme(MachineConfig.tiny())
        drive(engine, [read(0, 5)])
        drive(engine, [read(0, 5)] * 20, start_time=1000.0)
        assert engine.stats.counters.get("tla_hints_sent", 0) == 0

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="tla_hint_interval"):
            MachineConfig.tiny(tla_hint_interval=0)
