"""Cluster-level replication (Section 2.3.4 / Figure 10)."""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import MissStatus
from repro.schemes.locality import LocalityAwareScheme
from tests.helpers import check_coherence, drive, read, write


def cluster_engine(cluster_size, num_cores=16, rt=1):
    config = MachineConfig.small(
        cluster_size=cluster_size, replication_threshold=rt
    )
    return LocalityAwareScheme(config)


def make_shared(engine, line, cores=(14, 15)):
    drive(engine, [read(cores[0], line), read(cores[1], line)])


class TestReplicaPlacement:
    def test_cluster1_places_at_requester(self):
        engine = cluster_engine(1)
        for core in range(16):
            for line in range(64):
                assert engine.replica_slice_for(core, line) == core

    def test_cluster4_places_within_cluster(self):
        from repro.network.topology import cluster_members, cluster_of
        engine = cluster_engine(4)
        for core in range(16):
            members = cluster_members(cluster_of(core, 4, 4), 4, 4)
            for line in range(64):
                assert engine.replica_slice_for(core, line) in members

    def test_cluster_members_share_one_replica_slice(self):
        from repro.network.topology import cluster_members
        engine = cluster_engine(4)
        members = cluster_members(0, 4, 4)
        slices = {engine.replica_slice_for(core, 37) for core in members}
        assert len(slices) == 1

    def test_cluster_full_machine_single_location(self):
        engine = cluster_engine(16)
        slices = {engine.replica_slice_for(core, 37) for core in range(16)}
        assert len(slices) == 1

    def test_lines_interleave_within_cluster(self):
        engine = cluster_engine(4)
        slices = {engine.replica_slice_for(0, line) for line in range(16)}
        assert len(slices) == 4


class TestClusterProtocol:
    def test_replica_created_at_cluster_slice(self):
        engine = cluster_engine(4)
        make_shared(engine, 103)  # shared home = core 3, outside cluster 0
        slice_id = engine.replica_slice_for(0, 103)
        assert engine.replica_would_help(3, 0, 103)
        drive(engine, [read(0, 103)], start_time=1000.0)
        assert engine.slices[slice_id].replica(103) is not None

    def test_cluster_member_hits_shared_replica(self):
        from repro.network.topology import cluster_members, cluster_of
        engine = cluster_engine(4)
        make_shared(engine, 103)
        members = cluster_members(cluster_of(0, 4, 4), 4, 4)
        requester = members[0]
        neighbor = members[1]
        slice_id = engine.replica_slice_for(requester, 103)
        drive(engine, [read(requester, 103)], start_time=1000.0)
        assert engine.slices[slice_id].replica(103) is not None
        (result,) = drive(engine, [read(neighbor, 103)], start_time=2000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT

    def test_write_invalidates_cluster_replica(self):
        engine = cluster_engine(4)
        make_shared(engine, 103)
        slice_id = engine.replica_slice_for(0, 103)
        drive(engine, [read(0, 103)], start_time=1000.0)
        assert engine.slices[slice_id].replica(103) is not None
        drive(engine, [write(13, 103)], start_time=2000.0)
        assert engine.slices[slice_id].replica(103) is None

    def test_remote_cluster_probe_costs_network(self):
        """A requester whose cluster slice is remote pays mesh latency on
        the probe (the serialization penalty of Section 2.3.4)."""
        engine1 = cluster_engine(1)
        engine4 = cluster_engine(4)
        for engine in (engine1, engine4):
            make_shared(engine, 101)
        # Pick a core whose cluster-4 replica slice differs from itself
        # and whose cluster does not contain the home.
        core = next(
            core for core in range(16)
            if engine4.replica_slice_for(core, 101) != core
            and engine4.replica_would_help(
                engine4._home_of_cached_line(core, 101), core, 101)
        )
        (near,) = drive(engine1, [read(core, 101)], start_time=1000.0)
        (far,) = drive(engine4, [read(core, 101)], start_time=1000.0)
        assert far.latency >= near.latency

    def test_coherence_invariants_with_clustering(self):
        engine = cluster_engine(4)
        import random
        rng = random.Random(23)
        accesses = []
        for _ in range(400):
            core = rng.randrange(16)
            line = rng.randrange(48)
            accesses.append(write(core, line) if rng.random() < 0.25 else read(core, line))
        drive(engine, accesses)
        violations = [
            violation for violation in check_coherence(engine)
            # Cluster replicas are shared by members, so the directory's
            # holder sets legitimately differ from per-core holders.
            if "directory tracks" not in violation
        ]
        assert violations == []
