"""Adaptive Selective Replication: shared-RO classification and levels."""

import pytest

from repro.common.params import MachineConfig
from repro.common.types import MESIState, MissStatus
from repro.schemes.asr import ASRScheme
from tests.helpers import check_coherence, drive, read, write


def asr_engine(level=1.0, **overrides):
    return ASRScheme(MachineConfig.tiny(**overrides), replication_level=level)


def evict_from_l1(engine, core, line, start=0.0):
    """Evict ``line`` from the core's L1-D by filling its set."""
    sets = engine.config.l1d.sets
    ways = engine.config.l1d.ways
    fillers = [line + sets * (k + 1) for k in range(ways)]
    drive(engine, [read(core, filler) for filler in fillers], start_time=start)


class TestSharedReadOnlyClassification:
    def test_single_reader_not_shared(self):
        engine = asr_engine()
        drive(engine, [read(0, 5)])
        assert not engine.is_shared_readonly(5)

    def test_two_readers_shared(self):
        engine = asr_engine()
        drive(engine, [read(0, 5), read(1, 5)])
        assert engine.is_shared_readonly(5)

    def test_write_disqualifies(self):
        engine = asr_engine()
        drive(engine, [read(0, 5), read(1, 5), write(2, 5)])
        assert not engine.is_shared_readonly(5)

    def test_written_bit_is_sticky(self):
        engine = asr_engine()
        drive(engine, [write(0, 5), read(1, 5), read(2, 5)])
        assert not engine.is_shared_readonly(5)


class TestReplication:
    def test_shared_ro_victim_replicated_at_level_one(self):
        engine = asr_engine(level=1.0)
        drive(engine, [read(1, 5), read(0, 5)])  # line becomes shared-RO
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is not None
        assert engine.stats.counters["asr_placements"] >= 1

    def test_level_zero_never_replicates(self):
        engine = asr_engine(level=0.0)
        drive(engine, [read(1, 5), read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is None
        assert engine.stats.counters.get("asr_placements", 0) == 0

    def test_private_data_never_replicated(self):
        engine = asr_engine(level=1.0)
        drive(engine, [read(0, 5)])  # only one reader
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is None

    def test_written_data_never_replicated(self):
        engine = asr_engine(level=1.0)
        drive(engine, [write(2, 5), read(0, 5), read(1, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is None

    def test_intermediate_level_is_probabilistic(self):
        """At level 0.5, some victims replicate and some do not."""
        engine = asr_engine(level=0.5)
        # Stride 16 keeps each target clear of other targets' L1 fillers
        # (fillers are line+4 and line+8).
        lines = [5 + 16 * index for index in range(16)]
        for line in lines:
            drive(engine, [read(1, line), read(2, line)])
        placed_total = 0
        for round_index, line in enumerate(lines):
            drive(engine, [read(0, line)], start_time=10000.0 * (round_index + 1))
            evict_from_l1(engine, 0, line,
                          start=10000.0 * (round_index + 1) + 100)
        placed_total = engine.stats.counters.get("asr_placements", 0)
        assert 0 < placed_total < len(lines)

    def test_replication_level_validated(self):
        with pytest.raises(ValueError):
            asr_engine(level=1.5)


class TestReplicaBehaviour:
    def test_replica_hit_keeps_replica(self):
        """ASR replicas are inclusive (unlike VR's exclusive relation)."""
        engine = asr_engine(level=1.0)
        drive(engine, [read(1, 5), read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        (result,) = drive(engine, [read(0, 5)], start_time=50000.0)
        assert result.status == MissStatus.LLC_REPLICA_HIT
        assert engine.slices[0].replica(5) is not None

    def test_replicas_are_shared_state(self):
        engine = asr_engine(level=1.0)
        drive(engine, [read(1, 5), read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5).state == MESIState.SHARED

    def test_write_invalidates_replicas(self):
        engine = asr_engine(level=1.0)
        drive(engine, [read(1, 5), read(0, 5)])
        evict_from_l1(engine, 0, 5, start=100.0)
        assert engine.slices[0].replica(5) is not None
        drive(engine, [write(3, 5)], start_time=50000.0)
        assert engine.slices[0].replica(5) is None

    def test_coherence_invariants(self):
        engine = asr_engine(level=1.0)
        import random
        rng = random.Random(13)
        accesses = []
        for _ in range(400):
            core = rng.randrange(4)
            line = rng.randrange(40)
            accesses.append(write(core, line) if rng.random() < 0.2 else read(core, line))
        drive(engine, accesses)
        assert check_coherence(engine) == []


class TestLevels:
    def test_five_levels_defined(self):
        assert ASRScheme.LEVELS == (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_decisions_are_deterministic(self):
        first = asr_engine(level=0.5)
        second = asr_engine(level=0.5)
        outcomes_first = [first._replicate_now(line, 0) for line in range(50)]
        # Reset the decision counter coupling by using a fresh engine.
        outcomes_second = [second._replicate_now(line, 0) for line in range(50)]
        assert outcomes_first == outcomes_second
