"""MESI grant/transition helpers."""

import pytest

from repro.coherence.mesi import (
    merged_state,
    needs_downgrade,
    needs_writeback,
    read_grant_state,
    write_grant_state,
)
from repro.common.types import MESIState


class TestReadGrant:
    def test_sole_reader_gets_exclusive(self):
        assert read_grant_state(1) == MESIState.EXCLUSIVE

    def test_multiple_readers_get_shared(self):
        assert read_grant_state(2) == MESIState.SHARED
        assert read_grant_state(10) == MESIState.SHARED

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            read_grant_state(0)


class TestWriteGrant:
    def test_writer_gets_modified(self):
        assert write_grant_state() == MESIState.MODIFIED


class TestHelpers:
    def test_merged_state_takes_max(self):
        assert merged_state(MESIState.SHARED, MESIState.MODIFIED) == MESIState.MODIFIED
        assert merged_state(MESIState.EXCLUSIVE, MESIState.SHARED) == MESIState.EXCLUSIVE

    def test_needs_downgrade(self):
        assert needs_downgrade(MESIState.MODIFIED)
        assert needs_downgrade(MESIState.EXCLUSIVE)
        assert not needs_downgrade(MESIState.SHARED)
        assert not needs_downgrade(MESIState.INVALID)

    def test_needs_writeback(self):
        assert needs_writeback(MESIState.MODIFIED, dirty=False)
        assert needs_writeback(MESIState.SHARED, dirty=True)
        assert not needs_writeback(MESIState.SHARED, dirty=False)

    def test_state_flags(self):
        assert MESIState.MODIFIED.writable
        assert MESIState.EXCLUSIVE.writable
        assert not MESIState.SHARED.writable
        assert MESIState.SHARED.valid
        assert not MESIState.INVALID.valid
