"""Sharer tracking: full-map and ACKwise limited directory."""

import pytest

from repro.coherence.sharers import (
    AckwiseSharers,
    FullMapSharers,
    make_sharer_tracker,
)


class TestFullMap:
    def test_add_remove(self):
        sharers = FullMapSharers()
        sharers.add(3)
        sharers.add(5)
        assert sharers.count == 2
        assert 3 in sharers
        sharers.remove(3)
        assert 3 not in sharers
        assert sharers.count == 1

    def test_always_precise(self):
        sharers = FullMapSharers()
        for core in range(100):
            sharers.add(core)
        assert sharers.precise

    def test_clear(self):
        sharers = FullMapSharers()
        sharers.add(1)
        sharers.clear()
        assert sharers.count == 0

    def test_storage_bits(self):
        assert FullMapSharers.storage_bits(64) == 64


class TestAckwise:
    def test_precise_below_pointer_limit(self):
        sharers = AckwiseSharers(4)
        for core in (1, 2, 3, 4):
            sharers.add(core)
        assert sharers.precise
        assert sharers.pointers() == {1, 2, 3, 4}

    def test_overflow_on_fifth_sharer(self):
        sharers = AckwiseSharers(4)
        for core in range(5):
            sharers.add(core)
        assert not sharers.precise
        assert sharers.count == 5  # the count stays exact
        assert sharers.pointers() == frozenset()

    def test_members_remain_ground_truth(self):
        sharers = AckwiseSharers(2)
        for core in (7, 8, 9):
            sharers.add(core)
        assert sharers.members() == {7, 8, 9}

    def test_overflow_sticky_until_empty(self):
        """Hardware cannot reconstruct pointers after overflow."""
        sharers = AckwiseSharers(2)
        for core in (0, 1, 2):
            sharers.add(core)
        sharers.remove(2)
        assert not sharers.precise  # still broadcast mode at 2 sharers
        sharers.remove(1)
        assert not sharers.precise
        sharers.remove(0)
        assert sharers.precise  # empty resets

    def test_duplicate_add_is_idempotent(self):
        sharers = AckwiseSharers(2)
        sharers.add(1)
        sharers.add(1)
        assert sharers.count == 1
        assert sharers.precise

    def test_invalidation_targets_precise(self):
        sharers = AckwiseSharers(4)
        sharers.add(3)
        assert set(sharers.invalidation_targets(num_cores=16)) == {3}

    def test_invalidation_targets_broadcast(self):
        sharers = AckwiseSharers(1)
        sharers.add(3)
        sharers.add(4)
        assert set(sharers.invalidation_targets(num_cores=8)) == set(range(8))

    def test_clear_resets_overflow(self):
        sharers = AckwiseSharers(1)
        sharers.add(0)
        sharers.add(1)
        sharers.clear()
        assert sharers.precise
        assert sharers.count == 0

    def test_storage_bits_matches_paper(self):
        # ACKwise_4 at 64 cores: 4 pointers x 6 bits = 24 bits/entry.
        assert AckwiseSharers.storage_bits(64, 4) == 24

    def test_needs_at_least_one_pointer(self):
        with pytest.raises(ValueError):
            AckwiseSharers(0)


class TestFactory:
    def test_ackwise_by_default(self):
        tracker = make_sharer_tracker(16, 4)
        assert isinstance(tracker, AckwiseSharers)

    def test_fullmap_when_none(self):
        tracker = make_sharer_tracker(16, None)
        assert isinstance(tracker, FullMapSharers)
