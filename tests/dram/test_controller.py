"""DRAM controllers: latency, bandwidth queueing, placement."""

import pytest

from repro.common.params import MachineConfig
from repro.dram.controller import DramSystem, MemoryController, controller_tiles


class TestMemoryController:
    def test_unloaded_latency(self):
        controller = MemoryController(0, latency_cycles=75, service_cycles=13)
        wait, latency = controller.access(now=0.0)
        assert wait == 0.0
        assert latency == 75.0

    def test_queueing_under_load(self):
        controller = MemoryController(0, latency_cycles=75, service_cycles=13)
        for _ in range(60):
            controller.access(now=100.0)
        wait, latency = controller.access(now=101.0)
        assert wait > 0.0
        assert latency > 75.0

    def test_queue_drains_in_later_epoch(self):
        controller = MemoryController(0, latency_cycles=75, service_cycles=13)
        for _ in range(60):
            controller.access(now=100.0)
        later = MemoryController.CONTENTION_EPOCH * 3 + 1.0
        wait, _latency = controller.access(now=later)
        assert wait == 0.0

    def test_out_of_order_access_is_stable(self):
        """A far-future access must not block frontier traffic (the
        busy-until pathology the windowed model replaces)."""
        controller = MemoryController(0, latency_cycles=75, service_cycles=13)
        controller.access(now=1_000_000.0)
        wait, _ = controller.access(now=5.0)
        assert wait < controller.service


class TestControllerPlacement:
    def test_count(self, small_config):
        assert len(controller_tiles(16, 4)) == 4

    def test_tiles_unique(self):
        tiles = controller_tiles(64, 8)
        assert len(set(tiles)) == 8

    def test_not_all_in_one_column(self):
        """Controllers must spread over mesh columns (hot-spot avoidance)."""
        for num_cores, num_controllers in ((16, 4), (64, 8)):
            side = int(num_cores ** 0.5)
            columns = {tile % side for tile in controller_tiles(num_cores, num_controllers)}
            assert len(columns) > 1


class TestDramSystem:
    def test_interleaving_covers_all_controllers(self, small_config):
        dram = DramSystem(small_config)
        used = {dram.controller_for(line).core_id for line in range(4096)}
        assert len(used) == small_config.num_mem_controllers

    def test_contiguous_region_spreads(self, small_config):
        """A streaming region must not hammer one controller."""
        dram = DramSystem(small_config)
        counts = {}
        for line in range(1024):
            core = dram.controller_for(line).core_id
            counts[core] = counts.get(core, 0) + 1
        assert max(counts.values()) < 2 * min(counts.values())

    def test_read_write_counters(self, small_config):
        dram = DramSystem(small_config)
        dram.read(0, now=0.0)
        dram.read(1, now=0.0)
        dram.write(2, now=0.0)
        assert dram.reads == 2
        assert dram.writes == 1
        assert dram.total_accesses() == 3

    def test_read_returns_controller(self, small_config):
        dram = DramSystem(small_config)
        controller, wait, latency = dram.read(7, now=0.0)
        assert controller in dram.controllers
        assert latency >= small_config.dram_latency_cycles
