"""Placement policies: S-NUCA interleaving and R-NUCA page classification."""

import pytest

from repro.placement.base import StaticNuca
from repro.placement.rnuca import PageClass, ReactiveNuca


class TestStaticNuca:
    def test_interleaves_by_address(self):
        placement = StaticNuca(16)
        assert placement.home_for(0, requester=5, is_ifetch=False) == 0
        assert placement.home_for(17, requester=5, is_ifetch=False) == 1

    def test_requester_independent(self):
        placement = StaticNuca(16)
        homes = {placement.home_for(100, core, False) for core in range(16)}
        assert len(homes) == 1

    def test_covers_all_slices(self):
        placement = StaticNuca(16)
        homes = {placement.home_for(line, 0, False) for line in range(64)}
        assert homes == set(range(16))

    def test_not_requester_dependent(self):
        assert not StaticNuca(16).homes_depend_on_requester


@pytest.fixture
def rnuca():
    return ReactiveNuca(num_cores=16, lines_per_page=64, instruction_clustering=True)


class TestRNucaClassification:
    def test_first_touch_private(self, rnuca):
        rnuca.observe_access(100, requester=3, is_ifetch=False)
        page_class, owner = rnuca.classification(100)
        assert page_class == PageClass.PRIVATE
        assert owner == 3

    def test_private_page_placed_at_owner(self, rnuca):
        rnuca.observe_access(100, requester=3, is_ifetch=False)
        assert rnuca.home_for(100, requester=3, is_ifetch=False) == 3
        # Even other requesters are directed to the owner slice.
        assert rnuca.home_for(100, requester=9, is_ifetch=False) == 3

    def test_same_core_does_not_reclassify(self, rnuca):
        rnuca.observe_access(100, requester=3, is_ifetch=False)
        rnuca.observe_access(101, requester=3, is_ifetch=False)
        page_class, _ = rnuca.classification(100)
        assert page_class == PageClass.PRIVATE
        assert rnuca.shared_transitions == 0

    def test_second_core_makes_shared(self, rnuca):
        rnuca.observe_access(100, requester=3, is_ifetch=False)
        rnuca.observe_access(100, requester=4, is_ifetch=False)
        page_class, _ = rnuca.classification(100)
        assert page_class == PageClass.SHARED
        assert rnuca.shared_transitions == 1

    def test_shared_page_interleaved(self, rnuca):
        rnuca.observe_access(100, requester=3, is_ifetch=False)
        rnuca.observe_access(100, requester=4, is_ifetch=False)
        assert rnuca.home_for(100, requester=3, is_ifetch=False) == 100 % 16

    def test_page_granularity(self, rnuca):
        """All lines of a page share the classification."""
        rnuca.observe_access(0, requester=2, is_ifetch=False)
        assert rnuca.home_for(63, requester=2, is_ifetch=False) == 2
        rnuca.observe_access(64, requester=5, is_ifetch=False)
        assert rnuca.home_for(64, requester=5, is_ifetch=False) == 5

    def test_untouched_page_interleaved(self, rnuca):
        assert rnuca.home_for(200, requester=0, is_ifetch=False) == 200 % 16

    def test_private_page_count(self, rnuca):
        rnuca.observe_access(0, requester=0, is_ifetch=False)
        rnuca.observe_access(64, requester=1, is_ifetch=False)
        assert rnuca.private_pages == 2
        rnuca.observe_access(0, requester=1, is_ifetch=False)
        assert rnuca.private_pages == 1


class TestRNucaInstructionClustering:
    def test_instruction_home_within_cluster(self, rnuca):
        """A core's instruction home must be one of its 4-core cluster."""
        from repro.network.topology import cluster_members, cluster_of
        for core in range(16):
            home = rnuca.home_for(500, requester=core, is_ifetch=True)
            cluster = cluster_of(core, 4, side=4)
            assert home in cluster_members(cluster, 4, side=4)

    def test_one_copy_per_cluster(self, rnuca):
        """Cores in the same cluster agree on the instruction home."""
        from repro.network.topology import cluster_members
        members = cluster_members(0, 4, side=4)
        homes = {rnuca.home_for(500, requester=core, is_ifetch=True) for core in members}
        assert len(homes) == 1

    def test_different_clusters_hold_separate_copies(self, rnuca):
        homes = {rnuca.home_for(500, requester=core, is_ifetch=True) for core in range(16)}
        assert len(homes) == 4  # one per cluster

    def test_rotational_interleaving_spreads_lines(self, rnuca):
        """Different lines occupy different slices within a cluster."""
        homes = {rnuca.home_for(line, requester=0, is_ifetch=True) for line in range(16)}
        assert len(homes) == 4

    def test_instruction_pages_not_classified(self, rnuca):
        rnuca.observe_access(500, requester=0, is_ifetch=True)
        assert rnuca.classification(500) is None

    def test_requester_dependent(self, rnuca):
        assert rnuca.homes_depend_on_requester


class TestRNucaWithoutClustering:
    """The locality-aware scheme's placement (Section 2.1)."""

    def test_instructions_follow_page_classification(self):
        placement = ReactiveNuca(16, 64, instruction_clustering=False)
        placement.observe_access(500, requester=2, is_ifetch=True)
        assert placement.home_for(500, requester=2, is_ifetch=True) == 2
        placement.observe_access(500, requester=3, is_ifetch=True)
        assert placement.home_for(500, requester=3, is_ifetch=True) == 500 % 16

    def test_not_requester_dependent(self):
        placement = ReactiveNuca(16, 64, instruction_clustering=False)
        assert not placement.homes_depend_on_requester
