#!/usr/bin/env python3
"""Define your own experiment in ~10 lines with the declarative API.

An :class:`ExperimentSpec` is just data — a named grid of
:class:`RunPoint`s — and :func:`execute_spec` takes care of everything
the built-in figures get: trace reuse, content-addressed result caching,
decoded-view release, optional process-pool sharding.  The returned
:class:`ResultSet` answers table-shaped questions directly.

This one asks a question the paper doesn't plot: how sensitive is the
locality-aware protocol (RT-3) to the ACKwise directory's pointer
count, versus the S-NUCA baseline?

Run with::

    python examples/custom_experiment.py [--scale 0.25]
"""

import argparse

from repro.experiments import ExperimentSetup, ExperimentSpec, RunPoint, execute_spec

# --- the whole experiment definition ------------------------------------
SPEC = ExperimentSpec(
    name="ackwise-sweep",
    title="ACKwise pointer-count sensitivity",
    points=tuple(
        RunPoint(scheme, benchmark,
                 config_overrides=(("ackwise_pointers", pointers),),
                 label=f"{scheme}/p{pointers}")
        for benchmark in ("BARNES", "OCEAN-C", "DEDUP")
        for scheme in ("S-NUCA", "RT-3")
        for pointers in (1, 2, 4)
    ),
    baseline="S-NUCA/p4",
)
# ------------------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="trace-length multiplier (default 0.25)")
    args = parser.parse_args()

    setup = ExperimentSetup.small(scale=args.scale)
    results = execute_spec(SPEC, setup)

    labels = results.labels()
    time = results.normalized_to(value="completion_time")   # spec baseline
    print(f"{SPEC.title} (completion time, {SPEC.baseline} = 1.0)\n")
    print(f"{'benchmark':12s}" + "".join(f"{label:>12s}" for label in labels))
    for benchmark, row in time.items():
        print(f"{benchmark:12s}" + "".join(f"{row[label]:>12.3f}" for label in labels))

    geo = results.geomean("completion_time", baseline=SPEC.baseline)
    print(f"\n{'GEOMEAN':12s}" + "".join(f"{geo[label]:>12.3f}" for label in labels))


if __name__ == "__main__":
    main()
