#!/usr/bin/env python3
"""Five-way LLC management shootout over the paper's behaviour classes.

Runs all evaluated schemes — S-NUCA, R-NUCA, Victim Replication, ASR
(best level) and the locality-aware protocol (RT-3) — over one
representative benchmark from each behaviour class the paper's Section
4.1 discusses, and prints the normalized energy/time matrix plus who
won each benchmark and why.

Run with::

    python examples/scheme_shootout.py [--scale 0.5]
"""

import argparse

from repro import MachineConfig
from repro.experiments.comparison import run_comparison
from repro.experiments.runner import ExperimentSetup

CASES = {
    "BARNES": "shared read-write reuse: only line-level replication helps",
    "DEDUP": "pure private data: R-NUCA placement is already optimal",
    "LU-NC": "migratory data: needs E/M replicas (ASR cannot help)",
    "FLUIDANIMATE": "streaming beyond LLC capacity: replication must be filtered",
    "STREAMCLUSTER": "shared read-only reuse: ASR's best case, RT-3 close behind",
    "BLACKSCHOLES": "page-level false sharing: defeats R-NUCA's classification",
}

SCHEMES = ("S-NUCA", "R-NUCA", "VR", "ASR", "RT-3")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5,
                        help="trace-length multiplier (default 0.5)")
    args = parser.parse_args()

    setup = ExperimentSetup(MachineConfig.small(), scale=args.scale, seed=1)
    print(f"Running {len(SCHEMES)} schemes x {len(CASES)} benchmarks "
          f"(scale {args.scale:g})...\n")
    results = run_comparison(setup, benchmarks=CASES, schemes=SCHEMES)

    print(f"{'benchmark':14s}" + "".join(f"{scheme:>10s}" for scheme in SCHEMES)
          + "   energy normalized to S-NUCA")
    for benchmark, row in results.items():
        base = row["S-NUCA"].total_energy
        cells = "".join(f"{row[s].total_energy / base:>10.3f}" for s in SCHEMES)
        print(f"{benchmark:14s}{cells}")

    print(f"\n{'benchmark':14s}" + "".join(f"{scheme:>10s}" for scheme in SCHEMES)
          + "   completion time normalized to S-NUCA")
    for benchmark, row in results.items():
        base = row["S-NUCA"].completion_time
        cells = "".join(f"{row[s].completion_time / base:>10.3f}" for s in SCHEMES)
        print(f"{benchmark:14s}{cells}")

    print("\nWhy each benchmark behaves the way it does:")
    for benchmark, reason in CASES.items():
        row = results[benchmark]
        winner = min(SCHEMES, key=lambda s: row[s].total_energy)
        print(f"  {benchmark:14s} winner: {winner:7s} — {reason}")


if __name__ == "__main__":
    main()
