#!/usr/bin/env python3
"""Quickstart: simulate one benchmark under two LLC schemes and compare.

Builds the scaled-down 16-core machine, generates the BARNES-like
workload (high-reuse shared read-write data — the paper's flagship case
for replicating read-write data), and runs it under the S-NUCA baseline
and the locality-aware protocol at the paper's best threshold (RT = 3).

Run with::

    python examples/quickstart.py
"""

from repro import MachineConfig, build_trace, get_profile, make_scheme
from repro.sim.simulator import simulate


def main() -> None:
    config = MachineConfig.small()
    profile = get_profile("BARNES")
    print(f"Benchmark: {profile.name} — {profile.description}\n")

    traces = build_trace(profile, config, scale=0.5, seed=1)
    print(f"Machine: {config.num_cores} cores, "
          f"{config.llc_slice.capacity_bytes // 1024} KB LLC slice per core")
    print(f"Trace:   {traces.total_accesses():,} accesses over "
          f"{traces.footprint_lines():,} distinct lines\n")

    results = {}
    for label in ("S-NUCA", "RT-3"):
        engine = make_scheme(label, config)
        stats = simulate(engine, traces)
        results[label] = (stats, stats.energy_breakdown(engine.energy_model()))

    header = f"{'':24s}{'S-NUCA':>14s}{'RT-3':>14s}{'ratio':>8s}"
    print(header)
    print("-" * len(header))

    baseline_stats, baseline_energy = results["S-NUCA"]
    locality_stats, locality_energy = results["RT-3"]

    rows = [
        ("Completion time (cyc)", baseline_stats.completion_time,
         locality_stats.completion_time),
        ("Energy (pJ)", sum(baseline_energy.values()), sum(locality_energy.values())),
        ("Off-chip miss rate", baseline_stats.offchip_miss_rate(),
         locality_stats.offchip_miss_rate()),
        ("Replica hit fraction",
         baseline_stats.miss_breakdown()["LLC-Replica-Hits"],
         locality_stats.miss_breakdown()["LLC-Replica-Hits"]),
    ]
    for name, base, ours in rows:
        ratio = ours / base if base else float("nan")
        print(f"{name:24s}{base:>14,.2f}{ours:>14,.2f}{ratio:>8.2f}")

    print("\nLocality-aware protocol activity:")
    for counter in ("replicas_created", "promotions", "demotions",
                    "llc_replica_hits", "replica_evictions"):
        print(f"  {counter:20s} {locality_stats.counters.get(counter, 0):>10,}")


if __name__ == "__main__":
    main()
