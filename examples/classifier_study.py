#!/usr/bin/env python3
"""Limited_k classifier study (Section 4.3 / Figure 9).

The Complete classifier stores a replication-mode bit and reuse counter
for *every* core in every directory entry — 96 KB per 256 KB slice at
64 cores.  The Limited_k classifier tracks just k cores and majority-
votes the rest, at 13.5 KB for k = 3.  This example sweeps k on the
classifier-sensitive STREAMCLUSTER model and prints the quality/storage
trade-off that led the paper to choose k = 3.

Run with::

    python examples/classifier_study.py
"""

from repro import MachineConfig
from repro.experiments.fig9_limitedk import k_label, run_fig9
from repro.experiments.runner import ExperimentSetup
from repro.experiments.storage import storage_report


def main() -> None:
    setup = ExperimentSetup(MachineConfig.small(), scale=0.8, seed=3)
    paper_machine = MachineConfig.paper()
    benchmarks = ("STREAMCLUSTER", "BARNES", "DEDUP")
    k_values = (1, 3, 5, 7, None)

    print("Sweeping the Limited_k classifier "
          f"(k = 1, 3, 5, 7, complete) on {', '.join(benchmarks)}...\n")
    results = run_fig9(setup, benchmarks, k_values)

    num_cores = setup.config.num_cores
    complete = k_label(None, num_cores)
    print(f"{'benchmark':16s}" + "".join(
        f"{k_label(k, num_cores):>10s}" for k in k_values))
    for benchmark, row in results.items():
        base = row[complete].total_energy
        cells = "".join(
            f"{row[k_label(k, num_cores)].total_energy / base:>10.3f}"
            for k in k_values
        )
        print(f"{benchmark:16s}{cells}   (energy / Complete)")

    print("\nStorage cost per 256 KB LLC slice on the paper's 64-core machine:")
    for k in (1, 3, 5, 7):
        report = storage_report(paper_machine, k=k)
        print(f"  Limited_{k}: {report.limited_k_kb + report.replica_reuse_kb:5.1f} KB")
    report = storage_report(paper_machine)
    print(f"  Complete:  {report.complete_kb + report.replica_reuse_kb:5.1f} KB")
    print("\nThe paper picks k = 3: within a few percent of Complete almost "
          "everywhere,\nat 14.5 KB instead of 97 KB per slice.")


if __name__ == "__main__":
    main()
