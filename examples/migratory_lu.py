#!/usr/bin/env python3
"""Migratory shared data: why replicas need the E/M states (Section 2.3.1).

LU-NC's blocks are *migratory*: one core reads and writes a block
exclusively for a while, then ownership moves to another core.  A
replication scheme restricted to Shared-state replicas (like ASR, which
only replicates shared read-only lines) cannot help — the data is
written between visits.  The locality-aware protocol creates replicas in
the Exclusive/Modified states, so the owning core's read-write bursts
stay entirely within its own tile.

This example runs the LU-NC model under ASR (best level) and the
locality-aware protocol, and shows where the L1 misses were serviced.

Run with::

    python examples/migratory_lu.py
"""

from repro import MachineConfig, build_trace, get_profile
from repro.experiments.runner import ExperimentSetup, run_one


def main() -> None:
    setup = ExperimentSetup(MachineConfig.small(), scale=0.5, seed=2)
    profile = get_profile("LU-NC")
    print(f"Benchmark: {profile.name} — {profile.description}\n")

    results = {
        label: run_one(setup, label, "LU-NC")
        for label in ("S-NUCA", "ASR", "RT-1", "RT-3")
    }

    print(f"{'scheme':10s}{'energy (pJ)':>14s}{'time (cyc)':>14s}"
          f"{'replica hits':>14s}{'home hits':>11s}{'off-chip':>10s}")
    for label, result in results.items():
        breakdown = result.stats.miss_breakdown()
        extra = f"  (ASR level {result.asr_level:g})" if result.asr_level is not None else ""
        print(
            f"{label:10s}{result.total_energy:>14,.0f}"
            f"{result.completion_time:>14,.0f}"
            f"{breakdown['LLC-Replica-Hits']:>14.1%}"
            f"{breakdown['LLC-Home-Hits']:>11.1%}"
            f"{breakdown['OffChip-Misses']:>10.1%}{extra}"
        )

    asr = results["ASR"]
    locality = results["RT-1"]
    print(
        f"\nASR replicated {asr.stats.counters.get('asr_placements', 0):,} victims; "
        f"the locality-aware protocol created "
        f"{locality.stats.counters.get('replicas_created', 0):,} replicas "
        f"(E/M-capable), of which migratory writes could hit locally."
    )
    saving = 1 - locality.total_energy / asr.total_energy
    print(f"Energy saving of locality-aware over ASR on migratory data: {saving:.1%}")


if __name__ == "__main__":
    main()
