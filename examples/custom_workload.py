#!/usr/bin/env python3
"""Bring your own workload: define a profile, persist the trace, simulate.

The benchmark catalog is just data — a downstream user studying their
own application defines a :class:`BenchmarkProfile` with its access mix
and working-set sizes, builds a deterministic trace, optionally saves it
to disk for byte-reproducible experiments, and runs it under any scheme.

This example models a producer/consumer pipeline stage: a large shared
read-mostly dictionary (hot lookups), per-worker private scratch, and a
small write-shared work queue.

Run with::

    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

from repro import MachineConfig, make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import BenchmarkProfile, build_trace
from repro.workloads.io import load_trace_set, save_trace_set

PIPELINE = BenchmarkProfile(
    name="PIPELINE",
    description="Pipeline stage: hot shared dictionary, private scratch, "
                "write-shared work queue.",
    f_ifetch=0.05,
    f_private=0.30,
    f_shared_ro=0.50,      # the dictionary: replication should shine
    f_shared_rw=0.15,      # the work queue: contended, low reuse
    shared_ro_pattern="zipf",
    zipf_skew=3.0,
    private_ws_x_l1d=1.5,
    shared_ro_ws_x_l1d=6.0,
    shared_rw_ws_x_l1d=0.5,
    write_frac_rw=0.45,
    accesses_per_core=4000,
)


def main() -> None:
    config = MachineConfig.small()
    traces = build_trace(PIPELINE, config, scale=1.0, seed=11)
    print(f"Custom workload: {PIPELINE.name} — {PIPELINE.description}")
    print(f"  {traces.total_accesses():,} accesses, "
          f"{traces.footprint_lines():,} lines\n")

    with tempfile.TemporaryDirectory() as tmp:
        path = save_trace_set(traces, Path(tmp) / "pipeline.npz")
        print(f"Trace persisted to {path.name} "
              f"({path.stat().st_size / 1024:.0f} KB) and reloaded.\n")
        traces = load_trace_set(path)

    print(f"{'scheme':10s}{'energy (pJ)':>14s}{'time (cyc)':>13s}"
          f"{'replica hits':>14s}")
    baseline_energy = None
    for label in ("S-NUCA", "R-NUCA", "ASR", "RT-3"):
        engine = make_scheme(label, config)
        stats = simulate(engine, traces)
        energy = sum(stats.energy_breakdown(engine.energy_model()).values())
        if baseline_energy is None:
            baseline_energy = energy
        print(f"{label:10s}{energy:>14,.0f}{stats.completion_time:>13,.0f}"
              f"{stats.miss_breakdown()['LLC-Replica-Hits']:>14.1%}"
              f"   ({energy / baseline_energy:.3f}x S-NUCA)")

    print("\nThe hot dictionary rewards replication; the write-shared queue")
    print("does not — the classifier sorts the two apart automatically.")


if __name__ == "__main__":
    main()
