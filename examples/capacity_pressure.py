#!/usr/bin/env python3
"""The replication/pressure trade-off: why the threshold exists at all.

Replication is free performance while the LLC has slack, and a liability
once replicas start evicting useful lines.  This example sweeps the LLC
slice size on a BARNES-like workload and shows the crossover: with a
large LLC, the aggressive RT-1 wins (replicate everything, nothing is
evicted); as the slice shrinks, RT-1's blind replication raises the
off-chip miss rate and RT-3's selectivity takes over — the same
mechanism behind FLUIDANIMATE's RT-3 > RT-1 result in the paper.

Run with::

    python examples/capacity_pressure.py
"""

from repro.common.params import CacheGeometry, MachineConfig
from repro.schemes.factory import make_scheme
from repro.sim.simulator import simulate
from repro.workloads.benchmarks import build_trace, get_profile


def run_point(sets: int, label: str, traces_cache: dict) -> dict:
    config = MachineConfig.small(llc_slice=CacheGeometry(sets=sets, ways=8))
    if sets not in traces_cache:
        traces_cache[sets] = build_trace(get_profile("BARNES"), config,
                                         scale=0.5, seed=4)
    traces = traces_cache[sets]
    engine = make_scheme(label, config)
    stats = simulate(engine, traces)
    return {
        "energy": sum(stats.energy_breakdown(engine.energy_model()).values()),
        "time": stats.completion_time,
        "offchip": stats.offchip_miss_rate(),
        "replica_hits": stats.miss_breakdown()["LLC-Replica-Hits"],
    }


def main() -> None:
    print("Sweeping LLC slice capacity on a BARNES-like workload "
          "(RT-1 vs RT-3)\n")
    print(f"{'slice lines':>12s}{'':4s}"
          f"{'RT-1 energy':>12s}{'RT-3 energy':>12s}{'winner':>8s}"
          f"{'RT-1 offchip':>14s}{'RT-3 offchip':>14s}")
    traces_cache: dict = {}
    for sets in (64, 32, 16, 8):
        lines = sets * 8
        rt1 = run_point(sets, "RT-1", traces_cache)
        rt3 = run_point(sets, "RT-3", traces_cache)
        winner = "RT-1" if rt1["energy"] < rt3["energy"] else "RT-3"
        print(f"{lines:>12d}{'':4s}"
              f"{rt1['energy']:>12,.0f}{rt3['energy']:>12,.0f}{winner:>8s}"
              f"{rt1['offchip']:>14.3f}{rt3['offchip']:>14.3f}")

    print(
        "\nAs capacity shrinks, RT-1's unconditional replicas crowd out the\n"
        "working set (off-chip rate rises) while RT-3 only spends capacity\n"
        "on lines with demonstrated reuse — the trade-off the Replication\n"
        "Threshold navigates (Section 4.1)."
    )


if __name__ == "__main__":
    main()
